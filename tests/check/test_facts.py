"""The facts bridge: sheets, SAT discharge, and the optimizer payoff.

The load-bearing property lives here: a fact-assisted compile is
never worse than the unassisted one and stays sequentially equivalent
to it -- because every consumed fact is re-discharged against the
artifact it rewrites, a wrong sheet degrades to the plain result
instead of miscompiling.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.facts import (
    Fact,
    FactSheet,
    derive_facts,
    discharge_register_invariant,
    latch_bus,
    register_care,
    register_values_fact,
    table_dontcare_fact,
)
from repro.check.spec import check_spec
from repro.controllers.fsm import FsmSpec
from repro.flow import PassManager
from repro.flow.cache import flow_fingerprint
from repro.sim.crosscheck import AigSim
from repro.tables.truthtable import TruthTable

#: The standard fact-consuming pipeline: fsm_encode translates the
#: reachable-states fact into a register-values fact on ``state``,
#: which dc_rewrite spends as an external care set.
FSM_PIPELINE = "fsm_encode{realize=case},elaborate,optimize,dc_rewrite"


def _trap_fsm(seed: int = 0, live: int = 4, total: int = 6) -> FsmSpec:
    """A random FSM whose states ``live..total-1`` are unreachable:
    the live states only ever transition among themselves."""
    rng = random.Random(seed)
    combos = 1 << 2
    next_state = [
        [rng.randrange(live) for _ in range(combos)]
        for _ in range(live)
    ] + [
        [rng.randrange(total) for _ in range(combos)]
        for _ in range(total - live)
    ]
    output = [
        [rng.randrange(4) for _ in range(combos)] for _ in range(total)
    ]
    return FsmSpec(f"trap{seed}", 2, 2, total, 0, next_state, output)


# ---------------------------------------------------------------------
# The sheet model
# ---------------------------------------------------------------------
def test_fact_normalises_and_validates():
    fact = Fact("register-values", "state", (3, 1, 2), width=2)
    assert fact.values == (1, 2, 3)
    with pytest.raises(ValueError):
        Fact("no-such-kind", "x", (1,))
    with pytest.raises(ValueError):
        Fact("register-values", "x", ())
    with pytest.raises(ValueError):
        Fact("register-values", "x", (1, 1))


def test_sheet_hash_is_order_insensitive():
    a = register_values_fact("state", 2, (0, 1))
    b = table_dontcare_fact(TruthTable.from_rows(2, [1, 0, 1, 0], 1), (3,))
    assert FactSheet((a, b)).sheet_hash() == FactSheet((b, a)).sheet_hash()
    assert FactSheet((a,)).sheet_hash() != FactSheet((b,)).sheet_hash()


def test_sheet_select_without_replacing():
    a = register_values_fact("state", 2, (0, 1))
    b = register_values_fact("mode", 1, (0,))
    sheet = FactSheet((a, b))
    assert sheet.select("register-values", "state") == [a]
    assert len(sheet.without("register-values", "mode")) == 1
    wider = register_values_fact("state", 3, (0, 1, 4))
    replaced = sheet.replacing(wider)
    assert sheet.select("register-values", "state") == [a]  # immutable
    assert replaced.select("register-values", "state") == [wider]
    assert len(replaced) == 2


def test_sheet_json_round_trip():
    sheet = derive_facts(_trap_fsm())
    assert FactSheet.from_json(sheet.to_json()).sheet_hash() == (
        sheet.sheet_hash()
    )


def test_derive_facts_proves_the_trap():
    spec = _trap_fsm()
    (fact,) = derive_facts(spec).select("reachable-states")
    assert fact.target == spec.ir_hash()
    assert set(fact.values) == set(spec.reachable_states())
    assert set(fact.values) <= {0, 1, 2, 3}


# ---------------------------------------------------------------------
# SAT discharge
# ---------------------------------------------------------------------
def _compiled_trap(seed: int = 0, facts=None):
    spec = _trap_fsm(seed)
    sheet = derive_facts(spec) if facts is None else facts
    return spec, PassManager.parse(FSM_PIPELINE).compile(
        ctrl=spec, facts=sheet
    )


def test_discharge_accepts_true_invariant_rejects_false():
    spec, ctx = _compiled_trap()
    (fact,) = ctx.facts.select("register-values", "state")
    assert discharge_register_invariant(ctx.aig, "state", fact.values)
    # Dropping the reset state breaks the base case.
    reset_code = min(fact.values)
    smaller = tuple(v for v in fact.values if v != reset_code)
    assert not discharge_register_invariant(ctx.aig, "state", smaller)
    # A register that does not exist is not an invariant of anything.
    assert not discharge_register_invariant(
        ctx.aig, "ghost", fact.values
    )


def test_register_care_encodes_the_value_set():
    spec, ctx = _compiled_trap()
    (fact,) = ctx.facts.select("register-values", "state")
    sources, table = register_care(ctx.aig, "state", fact.values)
    bus = latch_bus(ctx.aig, "state")
    bit_of_node = {latch.node: bit for bit, latch in enumerate(bus)}
    assert list(sources) == sorted(sources)
    # Exactly one care minterm per value, at the row index obtained by
    # reading the value's bits in source order.
    assert bin(table).count("1") == len(fact.values)
    for value in fact.values:
        row = 0
        for position, node in enumerate(sources):
            if (value >> bit_of_node[node]) & 1:
                row |= 1 << position
        assert (table >> row) & 1


# ---------------------------------------------------------------------
# The payoff: never worse, always equivalent
# ---------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fact_assisted_compile_never_worse_and_equivalent(seed):
    spec = _trap_fsm(seed)
    plain = PassManager.parse(FSM_PIPELINE).compile(ctrl=spec)
    assisted = PassManager.parse(FSM_PIPELINE).compile(
        ctrl=spec, facts=derive_facts(spec)
    )
    assert assisted.aig.num_ands <= plain.aig.num_ands
    # Sequential cross-simulation from reset: the external care set is
    # an inductive invariant, so every reachable cycle must agree.
    rng = random.Random(seed)
    reference = AigSim(plain.aig)
    candidate = AigSim(assisted.aig)
    for _ in range(200):
        word = rng.randrange(1 << spec.num_inputs)
        assert candidate.step_words({"in": word}) == (
            reference.step_words({"in": word})
        )


def test_dc_rewrite_records_the_discharge():
    spec, ctx = _compiled_trap()
    (record,) = [r for r in ctx.records if r.name == "dc_rewrite"]
    assert any("discharged" in message for message in record.messages)


def test_wrong_fact_degrades_to_plain():
    # A sheet claiming the state register is stuck at reset is false;
    # the discharge must fail and the result must equal the plain one.
    spec = _trap_fsm()
    bogus = FactSheet((register_values_fact("state", 2, (0,)),))
    plain = PassManager.parse(FSM_PIPELINE).compile(ctrl=spec)
    assisted = PassManager.parse(FSM_PIPELINE).compile(
        ctrl=spec, facts=bogus
    )
    assert assisted.aig.canonical_hash() == plain.aig.canonical_hash()
    (record,) = [r for r in assisted.records if r.name == "dc_rewrite"]
    assert any("re-discharge" in m for m in record.messages)


def test_table_minimize_consumes_dontcare_fact():
    table = TruthTable.random_sparse(5, 6, 0.2, random.Random(7))
    dc_rows = tuple(range(22, 32))
    sheet = FactSheet((table_dontcare_fact(table, dc_rows),))
    pipeline = "table_minimize,elaborate,optimize"
    plain = PassManager.parse(pipeline).compile(ctrl=table)
    assisted = PassManager.parse(pipeline).compile(
        ctrl=table, facts=sheet
    )
    assert assisted.aig.num_ands <= plain.aig.num_ands
    # Equivalence under care: every row outside the don't-care set
    # must agree between the two lowerings.
    reference = AigSim(plain.aig)
    candidate = AigSim(assisted.aig)
    for row in range(table.depth):
        if row in dc_rows:
            continue
        assert candidate.step_words({"addr": row}) == (
            reference.step_words({"addr": row})
        )


# ---------------------------------------------------------------------
# Fingerprints and the CHK710 contract
# ---------------------------------------------------------------------
def test_fingerprint_distinguishes_fact_assisted_compiles():
    spec = _trap_fsm()
    rendered = PassManager.parse(FSM_PIPELINE).spec()
    plain = flow_fingerprint(rendered, ctrl=spec)
    assisted = flow_fingerprint(
        rendered, ctrl=spec, facts=derive_facts(spec)
    )
    assert plain != assisted
    # Same sheet, different fact order: same fingerprint.
    sheet = derive_facts(spec)
    reordered = FactSheet(tuple(reversed(tuple(sheet))))
    assert assisted == flow_fingerprint(
        rendered, ctrl=spec, facts=reordered
    )


def test_chk710_fires_only_for_stale_facts():
    stale = "fsm_encode{realize=case},elaborate,retime,dc_rewrite"
    codes = {
        d.code
        for d in check_spec(
            stale, input_stage="ctrl", ir_kind="fsm", has_facts=True
        )
    }
    assert "CHK710" in codes
    # No sheet on the context: nothing can be stale.
    codes = {
        d.code
        for d in check_spec(stale, input_stage="ctrl", ir_kind="fsm")
    }
    assert "CHK710" not in codes
    # A re-encoder that declares requires_facts translates the sheet,
    # so downstream consumers stay fresh.
    fresh = (
        "fsm_encode{realize=case},fsm_infer,honour_annotations,"
        "encode,elaborate,dc_rewrite"
    )
    codes = {
        d.code
        for d in check_spec(
            fresh, input_stage="ctrl", ir_kind="fsm", has_facts=True
        )
    }
    assert "CHK710" not in codes
