"""The lock-discipline analyzer: seeded defects, suppressions, and the
real tree's clean bill."""

import textwrap

from repro.check import check_lock_discipline, default_lock_paths


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return check_lock_discipline([path])


def test_unguarded_access_fires_chk601(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

            def bump(self):
                self.hits += 1

            def bump_safely(self):
                with self._lock:
                    self.hits += 1
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]
    assert "hits" in diags[0].message
    assert "mod.py:10" == diags[0].location


def test_suppression_and_init_are_exempt(tmp_path):
    assert lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock
                self.hits = 1  # construction happens-before sharing

            def racy_read(self):
                return self.hits  # unguarded-ok
        """,
    ) == []


def test_standalone_comment_annotates_next_line_only(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                # guarded-by: _lock
                self.hits = 0
                self.safe_to_read = True  # NOT annotated

            def bad(self):
                return self.hits

            def fine(self):
                return self.safe_to_read
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]


def test_nested_function_starts_with_no_locks(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

            def bump_later(self):
                with self._lock:
                    def callback():
                        self.hits += 1  # runs after the with exits
                    return callback
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]


def test_attribute_chains_resolve_through_unique_annotations(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.deduped = 0  # guarded-by: _lock

        class Service:
            def __init__(self):
                self.stats = Stats()

            def good(self):
                with self.stats._lock:
                    self.stats.deduped += 1

            def bad(self):
                self.stats.deduped += 1

            def out_of_scope(self, outcome):
                return outcome.deduped  # not self-rooted
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]
    assert diags[0].location.endswith(":18")


def test_conflicting_annotations_fire_chk602(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading

        class Confused:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self.x = 0  # guarded-by: _a
                self.x = 1  # guarded-by: _b
        """,
    )
    assert [d.code for d in diags] == ["CHK602"]


def test_dataclass_fields_annotate_in_class_body(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class Stats:
            started: int = 0  # guarded-by: _lock
            _lock: threading.Lock = field(default_factory=threading.Lock)

            def bump(self):
                self.started += 1
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]


def test_method_calls_on_guarded_fields_check_the_receiver(tmp_path):
    diags = lint_source(
        tmp_path,
        """
        import threading
        from collections import OrderedDict

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._memory = OrderedDict()  # guarded-by: _lock

            def bad(self, key):
                self._memory.move_to_end(key)

            def good(self, key):
                with self._lock:
                    self._memory.move_to_end(key)
        """,
    )
    assert [d.code for d in diags] == ["CHK601"]
    assert "_memory" in diags[0].message


def test_default_paths_cover_serve_and_cache():
    names = {p.name for p in default_lock_paths()}
    assert "server.py" in names
    assert "singleflight.py" in names
    assert "backends.py" in names
    assert "cache.py" in names


def test_real_tree_is_clean():
    assert check_lock_discipline() == []
