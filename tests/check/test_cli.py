"""The ``python -m repro.check`` entry point: exit codes, shipped-spec
cleanliness, and machine-readable output."""

import json

from repro.check.__main__ import main


def test_self_lint_is_clean(capsys):
    assert main(["--self"]) == 0
    assert "clean" in capsys.readouterr().out


def test_shipped_specs_are_clean(capsys):
    assert main(["specs"]) == 0
    assert "clean" in capsys.readouterr().out


def test_shipped_irs_are_clean(capsys):
    assert main(["ir"]) == 0


def test_bad_spec_exits_nonzero(capsys):
    assert main(["spec", "rewritee"]) == 1
    out = capsys.readouterr().out
    assert "CHK101" in out
    assert "did you mean 'rewrite'?" in out


def test_clean_spec_exits_zero(capsys):
    assert main(["spec", "elaborate,optimize,map,size", "--stage", "rtl"]) == 0


def test_spec_stage_and_ir_flags(capsys):
    assert (
        main(
            [
                "spec",
                "fsm_encode,elaborate,optimize,map,size",
                "--stage",
                "ctrl",
                "--ir",
                "fsm",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "spec",
                "pe_bind,elaborate,optimize,map,size",
                "--stage",
                "rtl",
            ]
        )
        == 0
    )  # bindings unknown: no CHK107


def test_strict_promotes_warnings(capsys):
    # A spec with only warnings exits 0 normally, 1 under --strict.
    # CHK105 is an error, so use an IR warning via the spec path is not
    # possible -- exercise strict through exit_code semantics instead:
    from repro.check import Diagnostic, exit_code

    warning = Diagnostic("CHK302", "warning", "prog", "falls off")
    assert exit_code([warning]) == 0
    assert exit_code([warning], strict=True) == 1


def test_json_format_parses(capsys):
    assert main(["spec", "rewritee", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and payload
    assert payload[0]["code"] == "CHK101"
    assert payload[0]["severity"] == "error"
    assert "target" in payload[0]


def test_registry_renders_schemas(capsys):
    assert main(["registry"]) == 0
    out = capsys.readouterr().out
    assert "elaborate" in out
    assert "optimize" in out
    assert "effort_rounds" in out
    assert "clock_period_ns" in out


def test_no_subcommand_shows_help(capsys):
    assert main([]) == 2
