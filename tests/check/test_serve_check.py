"""Static rejection at the service boundary: an invalid job never
reaches the compile pool, and the client sees a typed error carrying
the diagnostics."""

import json
import urllib.request

import pytest

from repro.flow import CompileCache, CompileJob
from repro.rtl.builder import ModuleBuilder
from repro.serve import CompileServer, ServeClient, SpecCheckError
from repro.serve.protocol import decode_result


def build_module(name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(3 * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = CompileCache(tmp_path_factory.mktemp("check") / "cache")
    with CompileServer(cache=cache, workers=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


def test_invalid_job_rejected_without_a_compile(server, client):
    before = client.stats()
    # A module input entering at 'optimize' (an AIG-stage pass): CHK105.
    bad = CompileJob(
        ("bad", 1), "optimize,map,size", module=build_module()
    )
    with pytest.raises(SpecCheckError) as excinfo:
        client.compile([bad])
    error = excinfo.value
    assert error.key == ("bad", 1)
    assert error.diagnostics
    assert {d.code for d in error.diagnostics} == {"CHK105"}
    assert "rejected by spec check" in str(error)

    after = client.stats()
    assert after["compiles"] == before["compiles"]
    assert after["spec_rejects"] == before["spec_rejects"] + 1


def test_valid_jobs_still_compile_alongside_rejects(server, client):
    good = CompileJob(
        ("good", 1), "elaborate,optimize,map,size", module=build_module()
    )
    results = client.compile([good])
    assert len(results) == 1
    assert results[("good", 1)].netlist is not None


def test_wire_format_carries_diagnostics(server):
    # ServeClient's encode path parses the spec and would reject
    # 'rewritee' client-side -- hand-patch a valid envelope instead,
    # so the *server's* precheck is what fires.
    from repro.serve.protocol import PROTOCOL_VERSION, encode_job

    job = CompileJob(("wire", 1), "elaborate", module=build_module())
    envelope = encode_job(job, 0)
    envelope["pipeline"] = "rewritee"
    body = json.dumps({"version": PROTOCOL_VERSION, "jobs": [envelope]})
    request = urllib.request.Request(
        server.url + "/compile",
        data=body.encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        lines = [
            json.loads(line)
            for line in response.read().decode().splitlines()
            if line.strip()
        ]
    (error_line,) = lines
    assert error_line["error"]["kind"] == "spec_check"
    codes = [d["code"] for d in error_line["error"]["diagnostics"]]
    assert codes == ["CHK101"]

    # decode_result round-trips the diagnostics into a typed error.
    result = decode_result(error_line)
    assert isinstance(result.error, SpecCheckError)
    assert result.error.diagnostics[0].code == "CHK101"
