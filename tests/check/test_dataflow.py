"""The dataflow engine: solver and lattices, the four analyses, and
the reporting surface (SARIF emission, suppressions, the CLI)."""

import json
from dataclasses import replace

from repro.check.dataflow import (
    CONST_BOTTOM,
    CONST_TOP,
    BoolLattice,
    ConstLattice,
    IntervalLattice,
    allowed_input_words,
    analyze_aig,
    analyze_fsm,
    analyze_guards,
    analyze_ir,
    analyze_microcode,
    analyze_netlist,
    fold,
    fsm_reachable_states,
    microcode_reachable,
    solve,
)
from repro.check.diagnostics import Diagnostic
from repro.check.irlint import lint_aig
from repro.check.sarif import SARIF_VERSION, to_sarif
from repro.check.suppress import (
    apply_suppressions,
    inline_disables,
    load_baseline,
    write_baseline,
)
from repro.controllers.dispatch import DispatchTable
from repro.controllers.fsm import FsmSpec
from repro.controllers.microcode import SeqOp
from repro.tech.netlist import FlopInstance, Instance, MappedNetlist

from tests.check.fixtures import (
    _FMT,
    _aig_with_dead_cone,
    _constant_field,
    _dead_branch,
    _loop_program,
    _netlist,
)


# ---------------------------------------------------------------------
# Solver and lattices
# ---------------------------------------------------------------------
def test_solve_reaches_fixpoint_on_cycles():
    graph = {0: [1], 1: [2], 2: [0]}  # node 3 exists but is isolated

    def successors(node):
        return [(succ, None) for succ in graph.get(node, [])]

    facts = solve(successors, {0: True}, BoolLattice())
    assert {node for node, fact in facts.items() if fact} == {0, 1, 2}
    assert 3 not in facts  # never seeded, never reached: stays bottom


def test_solve_applies_transfer_functions():
    lattice = IntervalLattice(width=4)

    def successors(node):
        if node == "a":
            return [("b", lambda iv: (iv[0] + 1, iv[1] + 1))]
        return []

    facts = solve(successors, {"a": (0, 2)}, lattice)
    assert facts["b"] == (1, 3)


def test_const_lattice_join():
    lattice = ConstLattice()
    assert lattice.join(CONST_BOTTOM, 3) == 3
    assert lattice.join(3, 3) == 3
    assert lattice.join(3, 4) == CONST_TOP
    assert lattice.leq(CONST_BOTTOM, 3)
    assert lattice.leq(3, CONST_TOP)
    assert not lattice.leq(CONST_TOP, 3)
    assert fold(lattice, [2, 2, 2]) == 2
    assert fold(lattice, [2, 5]) == CONST_TOP
    assert fold(lattice, []) == CONST_BOTTOM


def test_interval_lattice_join():
    lattice = IntervalLattice(width=3)
    assert lattice.top() == (0, 7)
    assert lattice.join((1, 2), (4, 5)) == (1, 5)
    assert lattice.join(None, (1, 2)) == (1, 2)
    assert lattice.leq((2, 3), (1, 5))
    assert not lattice.leq((0, 6), (1, 5))


# ---------------------------------------------------------------------
# FSM reachability under input predicates
# ---------------------------------------------------------------------
def test_fsm_reachability_matches_structural_walk():
    import random

    from repro.controllers.fsm_random import random_fsm

    for seed in range(5):
        spec = random_fsm(2, 2, 7, random.Random(seed))
        assert fsm_reachable_states(spec) == set(
            spec.reachable_states()
        )


def test_input_predicate_is_strictly_stronger():
    # State 1 is only entered on input 1; pin the input to 0 and it
    # becomes semantically unreachable even though the edge exists.
    spec = FsmSpec(
        "pred", 1, 1, 2, 0, [[0, 1], [1, 1]], [[0, 0], [1, 1]]
    )
    assert fsm_reachable_states(spec) == {0, 1}
    assert fsm_reachable_states(spec, allowed_inputs=[0]) == {0}
    assert analyze_fsm(spec) == []
    codes = [d.code for d in analyze_fsm(spec, allowed_inputs=[0])]
    assert codes == ["CHK701"]


def test_allowed_input_cubes_expand():
    assert allowed_input_words(2) == [0, 1, 2, 3]
    assert allowed_input_words(2, ["0-"]) == [0, 1]
    assert allowed_input_words(2, [3, "10"]) == [2, 3]


def test_guard_analysis_discharges_unsat_rows():
    # Guard "1-" can never fire when inputs are confined to "0-", and
    # deleting it orphans state 1.
    diagnostics = analyze_guards(
        2,
        2,
        [(0, "1-", 1), (1, "--", 0), (0, "0-", 0)],
        allowed_cubes=["0-"],
    )
    codes = sorted(d.code for d in diagnostics)
    assert codes == ["CHK701", "CHK702"]


def test_guard_analysis_clean_without_predicate():
    diagnostics = analyze_guards(
        2, 2, [(0, "1-", 1), (0, "0-", 0), (1, "--", 0)]
    )
    assert diagnostics == []


# ---------------------------------------------------------------------
# Microcode constant propagation
# ---------------------------------------------------------------------
def test_microcode_reachability_matches_program_walk():
    for program in (
        _loop_program().assemble(),
        _dead_branch(),
        _constant_field(),
    ):
        assert microcode_reachable(program) == set(
            program.reachable_addresses()
        )


def test_dead_branch_and_constant_field_found():
    assert [d.code for d in analyze_microcode(_dead_branch())] == [
        "CHK703"
    ]
    codes = [d.code for d in analyze_microcode(_constant_field())]
    assert "CHK704" in codes


def test_reachable_dispatch_is_not_flagged():
    from repro.controllers.assembler import Program

    program = Program(_FMT)
    program.label("start")
    program.inst(SeqOp.DISPATCH)
    assembled = replace(
        program.assemble(addr_bits=2),
        dispatch=DispatchTable("d", 1, {0: "start"}, None),
    )
    codes = [d.code for d in analyze_microcode(assembled)]
    assert "CHK705" not in codes


# ---------------------------------------------------------------------
# Liveness on AIGs and netlists
# ---------------------------------------------------------------------
def test_dead_cone_beats_the_structural_walk():
    aig = _aig_with_dead_cone()
    # The structural linter roots at every latch next, so the
    # self-sustaining cone looks alive to it.
    assert all(d.code != "CHK402" for d in lint_aig(aig))
    diagnostics = analyze_aig(aig)
    assert [d.code for d in diagnostics] == ["CHK706"]
    assert "zombie" in diagnostics[0].location


def test_live_aig_is_clean():
    from repro.aig.graph import AIG

    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q", reset_kind="sync")
    aig.set_latch_next(q, aig.and_(q, a))
    aig.add_po("f", q)  # the latch is observed: whole cone live
    assert analyze_aig(aig) == []


def test_netlist_dead_flop_found():
    netlist = _netlist(
        [Instance("inv", [2], 3), Instance("inv", [3], 4)],
        pi_nets={"a": 2},
        po_nets={"f": 3},
        num_nets=6,
    )
    netlist.flops = [
        FlopInstance("z", None, d_net=4, q_net=5, reset_value=0)
    ]
    diagnostics = analyze_netlist(netlist)
    assert [d.code for d in diagnostics] == ["CHK706"]
    assert "'z'" in diagnostics[0].location


def test_analyze_ir_dispatches_on_kind():
    spec = FsmSpec(
        "pred", 1, 1, 2, 0, [[0, 1], [1, 1]], [[0, 0], [1, 1]]
    )
    assert analyze_ir(spec) == []
    from repro.tables.truthtable import TruthTable

    table = TruthTable.from_rows(2, [1, 0, 1, 0], 1)
    assert analyze_ir(table) == []


# ---------------------------------------------------------------------
# SARIF emission
# ---------------------------------------------------------------------
def _finding(code, severity, location="state 1"):
    return Diagnostic(
        code=code,
        severity=severity,
        location=location,
        message=f"{code} fired",
        suggestion="do the thing" if severity == "warning" else None,
    )


def test_sarif_structure():
    findings = [
        ("ir/alpha", _finding("CHK701", "warning")),
        ("ir/beta", _finding("CHK401", "error")),
    ]
    log = to_sarif(findings)
    assert log["version"] == SARIF_VERSION
    run = log["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [rule["id"] for rule in rules] == ["CHK401", "CHK701"]
    results = run["results"]
    assert len(results) == 2
    by_rule = {r["ruleId"]: r for r in results}
    assert by_rule["CHK401"]["level"] == "error"
    assert by_rule["CHK701"]["level"] == "warning"
    for result in results:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
    name = by_rule["CHK701"]["locations"][0]["logicalLocations"][0][
        "fullyQualifiedName"
    ]
    assert name == "ir/alpha:state 1"
    # The suggestion rides in the message text.
    assert "do the thing" in by_rule["CHK701"]["message"]["text"]
    json.dumps(log)  # must be JSON-serialisable as-is


# ---------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------
def test_inline_disables_parse_and_ignore_unknown():
    source = (
        "# repro-check: disable=CHK704, CHK703\n"
        "x = 1  # repro-check: disable=NOPE\n"
    )
    assert inline_disables(source) == {"CHK703", "CHK704"}
    assert inline_disables("x = 1\n") == set()


def test_errors_are_never_suppressed(tmp_path):
    findings = [
        ("ir/a", _finding("CHK701", "warning")),
        ("ir/a", _finding("CHK401", "error")),
    ]
    kept, suppressed = apply_suppressions(
        findings, disabled={"CHK701", "CHK401"}
    )
    assert suppressed == 1
    assert [d.code for _, d in kept] == ["CHK401"]

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    baseline = load_baseline(baseline_path)
    # Only the warning was recorded: an error never enters a baseline.
    assert baseline == {("ir/a", "CHK701")}
    kept, suppressed = apply_suppressions(findings, baseline=baseline)
    assert suppressed == 1
    assert [d.code for _, d in kept] == ["CHK401"]


def test_baseline_round_trip_filters_exact_pairs(tmp_path):
    findings = [
        ("ir/a", _finding("CHK701", "warning")),
        ("ir/b", _finding("CHK701", "warning")),
    ]
    path = tmp_path / "baseline.json"
    write_baseline(path, findings[:1])
    kept, suppressed = apply_suppressions(
        findings, baseline=load_baseline(path)
    )
    assert suppressed == 1
    assert [target for target, _ in kept] == ["ir/b"]


# ---------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------
def test_cli_dataflow_clean(capsys):
    from repro.check.__main__ import main

    assert main(["dataflow"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_dataflow_sarif(capsys):
    from repro.check.__main__ import main

    assert main(["dataflow", "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == SARIF_VERSION
    assert log["runs"][0]["tool"]["driver"]["name"] == "repro.check"


def test_cli_baseline_round_trip(tmp_path, capsys):
    from repro.check.__main__ import main

    path = tmp_path / "baseline.json"
    assert main(["dataflow", "--write-baseline", str(path)]) == 0
    assert path.exists()
    capsys.readouterr()
    assert main(["dataflow", "--baseline", str(path), "--strict"]) == 0
