"""Unit tests for RTL expression construction and width checking."""

import pytest

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    InputRef,
    Mux,
    Not,
    ReduceOp,
    Slice,
)


def test_const_range_checked():
    Const(7, 3)
    with pytest.raises(ValueError):
        Const(8, 3)
    with pytest.raises(ValueError):
        Const(0, 0)


def test_operator_sugar_builds_nodes():
    a = InputRef("a", 4)
    b = InputRef("b", 4)
    assert isinstance(a & b, BinOp)
    assert isinstance(a | b, BinOp)
    assert isinstance(a ^ b, BinOp)
    assert isinstance(~a, Not)
    assert isinstance(a + b, BinOp)
    assert (a + 1).right == Const(1, 4)
    assert a.eq(b).width == 1
    assert a.lt(3).width == 1
    assert a.ne(b).width == 1


def test_coerce_rejects_junk():
    a = InputRef("a", 2)
    with pytest.raises(TypeError):
        _ = a & "nope"


def test_binop_width_mismatch():
    with pytest.raises(ValueError):
        BinOp("and", InputRef("a", 2), InputRef("b", 3))
    with pytest.raises(ValueError):
        BinOp("nand", InputRef("a", 2), InputRef("b", 2))


def test_slice_and_getitem():
    a = InputRef("a", 8)
    assert a[3].width == 1
    assert a[2:6].width == 4
    assert a[2:6].lsb == 2
    with pytest.raises(ValueError):
        _ = a[6:20]
    with pytest.raises(ValueError):
        _ = a[0:8:2]
    with pytest.raises(ValueError):
        Slice(a, 0, 0)


def test_concat_width():
    a = InputRef("a", 3)
    b = InputRef("b", 5)
    assert Concat((a, b)).width == 8
    with pytest.raises(ValueError):
        Concat(())


def test_mux_validation():
    sel = InputRef("s", 1)
    a = InputRef("a", 4)
    b = InputRef("b", 4)
    assert Mux(sel, a, b).width == 4
    with pytest.raises(ValueError):
        Mux(a, a, b)  # wide select
    with pytest.raises(ValueError):
        Mux(sel, a, InputRef("c", 3))


def test_reduce_ops():
    a = InputRef("a", 6)
    assert a.any().width == 1
    assert a.all().width == 1
    assert a.parity().width == 1
    with pytest.raises(ValueError):
        ReduceOp("nand", a)


def test_case_validation():
    sel = InputRef("s", 2)
    d = Const(0, 4)
    case = Case(sel, ((0, Const(1, 4)), (3, Const(2, 4))), d)
    assert case.width == 4
    with pytest.raises(ValueError):
        Case(sel, ((4, d),), d)  # label too wide
    with pytest.raises(ValueError):
        Case(sel, ((1, d), (1, d)), d)  # duplicate
    with pytest.raises(ValueError):
        Case(sel, ((0, Const(0, 2)),), d)  # arm width mismatch
