"""Unit tests for Module/ModuleBuilder invariants."""

import pytest

from repro.rtl.ast import Const, RegRef
from repro.rtl.builder import ModuleBuilder, cat, mux, repeat, zext
from repro.rtl.module import Memory, Reg, WritePort


def test_builder_simple_counter():
    b = ModuleBuilder("counter")
    en = b.input("en")
    count = b.reg("count", 4)
    b.drive(count, mux(en[0].eq(1), count + 1, count))
    b.output("value", count)
    module = b.build()
    assert module.name == "counter"
    assert module.regs["count"].next is not None


def test_duplicate_names_rejected():
    b = ModuleBuilder("m")
    b.input("x", 2)
    with pytest.raises(ValueError):
        b.input("x", 2)
    with pytest.raises(ValueError):
        b.reg("x", 2)
    b.output("y", Const(0, 1))
    with pytest.raises(ValueError):
        b.output("y", Const(0, 1))


def test_undriven_register_fails_validation():
    b = ModuleBuilder("m")
    b.reg("r", 2)
    with pytest.raises(ValueError):
        b.build()


def test_drive_twice_rejected():
    b = ModuleBuilder("m")
    r = b.reg("r", 2)
    b.drive(r, Const(0, 2))
    with pytest.raises(ValueError):
        b.drive(r, Const(1, 2))


def test_unknown_register_reference_fails():
    b = ModuleBuilder("m")
    r = b.reg("r", 2)
    b.drive(r, RegRef("ghost", 2))
    with pytest.raises(ValueError):
        b.build()


def test_width_mismatch_on_drive_fails():
    b = ModuleBuilder("m")
    r = b.reg("r", 2)
    b.drive(r, Const(0, 3))
    with pytest.raises(ValueError):
        b.build()


def test_rom_and_read():
    b = ModuleBuilder("m")
    addr = b.input("addr", 2)
    table = b.rom("t", 8, 4, [1, 2, 3, 4])
    b.output("data", table.read(addr))
    module = b.build()
    assert module.memories["t"].contents == [1, 2, 3, 4]


def test_rom_wrong_addr_width_fails():
    b = ModuleBuilder("m")
    addr = b.input("addr", 3)
    table = b.rom("t", 8, 4, [1, 2, 3, 4])
    b.output("data", table.read(addr))
    with pytest.raises(ValueError):
        b.build()


def test_config_mem_creates_write_ports():
    b = ModuleBuilder("m")
    addr = b.input("addr", 3)
    table = b.config_mem("ucode", 6, 8)
    b.output("data", table.read(addr))
    module = b.build()
    assert "ucode_we" in module.inputs
    assert module.inputs["ucode_waddr"].width == 3
    assert module.inputs["ucode_wdata"].width == 6
    assert table.write_port.enable == "ucode_we"


def test_memory_validation():
    with pytest.raises(ValueError):
        Memory("m", 4, 3, contents=[0])  # not a power of two
    with pytest.raises(ValueError):
        Memory("m", 4, 4)  # no contents and not writable
    with pytest.raises(ValueError):
        Memory("m", 4, 4, contents=[16])  # word too wide
    with pytest.raises(ValueError):
        Memory("m", 4, 4, contents=[0] * 5)  # too deep
    with pytest.raises(ValueError):
        Memory("m", 4, 4, writable=True)  # missing port
    port = WritePort("we", "wa", "wd")
    mem = Memory("m", 4, 4, writable=True, write_port=port)
    assert mem.addr_width == 2


def test_reg_validation():
    with pytest.raises(ValueError):
        Reg("r", 2, reset_kind="weird")
    with pytest.raises(ValueError):
        Reg("r", 2, reset_value=4)


def test_helpers():
    a = Const(1, 2)
    assert cat(a).width == 2
    assert cat(a, a).width == 4
    assert zext(a, 5).width == 5
    assert zext(a, 2) is a
    with pytest.raises(ValueError):
        zext(a, 1)
    assert repeat(a, 3).width == 6
    with pytest.raises(ValueError):
        repeat(a, 0)


def test_case_registers_detected():
    b = ModuleBuilder("fsm")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(state, {0: mux(go[0].eq(1), Const(1, 2), Const(0, 2)), 1: Const(2, 2), 2: Const(0, 2)}, Const(0, 2))
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    module = b.build()
    assert set(module.case_registers()) == {"state"}


def test_table_register_not_detected_as_case():
    b = ModuleBuilder("tbl")
    go = b.input("go")
    state = b.reg("state", 2)
    table = b.rom("nxt", 2, 8, [0, 1, 2, 3, 0, 1, 2, 3])
    b.drive(state, table.read(cat(state, go)))
    b.output("busy", state.ne(0))
    module = b.build()
    assert module.case_registers() == {}
