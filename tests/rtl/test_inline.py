"""Unit tests for module inlining (generator composition)."""

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, mux
from repro.rtl.inline import inline
from repro.sim.rtlsim import Simulator


def build_counter(width=3):
    b = ModuleBuilder("counter")
    en = b.input("en")
    count = b.reg("count", width)
    b.drive(count, mux(en[0], count + 1, count))
    b.output("value", count)
    b.output("wrap", count.eq((1 << width) - 1))
    return b.build()


def test_inline_exposes_unconnected_inputs():
    parent = ModuleBuilder("top")
    outs = inline(parent, build_counter(), "c0")
    parent.output("v", outs["value"])
    module = parent.build()
    assert "c0_en" in module.inputs
    assert "c0_count" in module.regs
    sim = Simulator(module)
    values = [sim.step({"c0_en": 1})["v"] for _ in range(4)]
    assert values == [0, 1, 2, 3]


def test_inline_with_connections():
    parent = ModuleBuilder("top")
    go = parent.input("go")
    outs_a = inline(parent, build_counter(), "a", {"en": go})
    outs_b = inline(parent, build_counter(), "b", {"en": outs_a["wrap"]})
    parent.output("fast", outs_a["value"])
    parent.output("slow", outs_b["value"])
    module = parent.build()
    sim = Simulator(module)
    # b counts once per wrap of a (every 8 cycles with go held).  The
    # outputs of step k show the state after k-1 edges.
    for _ in range(17):
        out = sim.step({"go": 1})
    assert out["fast"] == 16 % 8
    assert out["slow"] == 2


def test_inline_two_instances_no_collision():
    parent = ModuleBuilder("top")
    inline(parent, build_counter(), "x")
    inline(parent, build_counter(), "y")
    module = parent.build()
    assert "x_count" in module.regs
    assert "y_count" in module.regs


def test_inline_collision_rejected():
    parent = ModuleBuilder("top")
    inline(parent, build_counter(), "x")
    with pytest.raises(ValueError):
        inline(parent, build_counter(), "x")


def test_inline_unknown_connection_rejected():
    parent = ModuleBuilder("top")
    with pytest.raises(ValueError, match="unknown child input"):
        inline(parent, build_counter(), "c", {"bogus": Const(0, 1)})


def test_inline_connection_width_checked():
    parent = ModuleBuilder("top")
    wide = parent.input("wide", 4)
    with pytest.raises(ValueError, match="width"):
        inline(parent, build_counter(), "c", {"en": wide})


def test_inline_config_memory_write_ports_reexposed():
    child = ModuleBuilder("leaf")
    addr = child.input("addr", 2)
    mem = child.config_mem("tbl", 4, 4)
    child.output("data", mem.read(addr))
    leaf = child.build()

    parent = ModuleBuilder("top")
    outs = inline(parent, leaf, "u0")
    parent.output("d", outs["data"])
    module = parent.build()
    memory = module.memories["u0_tbl"]
    assert memory.writable
    assert memory.write_port.enable == "u0_tbl_we"
    sim = Simulator(module)
    sim.step({"u0_tbl_we": 1, "u0_tbl_waddr": 2, "u0_tbl_wdata": 9})
    assert sim.step({"u0_addr": 2})["d"] == 9


def test_inline_config_write_port_cannot_be_driven():
    child = ModuleBuilder("leaf")
    addr = child.input("addr", 2)
    mem = child.config_mem("tbl", 4, 4)
    child.output("data", mem.read(addr))
    leaf = child.build()
    parent = ModuleBuilder("top")
    with pytest.raises(ValueError, match="write port"):
        inline(parent, leaf, "u0", {"tbl_we": Const(1, 1)})


def test_inline_rom_copied():
    child = ModuleBuilder("leaf")
    addr = child.input("addr", 1)
    rom = child.rom("t", 4, 2, [6, 9])
    child.output("data", rom.read(addr))
    leaf = child.build()
    parent = ModuleBuilder("top")
    outs = inline(parent, leaf, "u")
    parent.output("d", outs["data"])
    module = parent.build()
    assert module.memories["u_t"].contents == [6, 9]
    sim = Simulator(module)
    assert sim.step({"u_addr": 1})["d"] == 9
