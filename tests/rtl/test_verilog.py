"""Unit tests for the SystemVerilog pretty-printer."""

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.rtl.verilog import to_verilog


def build_demo():
    b = ModuleBuilder("demo")
    en = b.input("en")
    a = b.input("a", 4)
    count = b.reg("count", 4, reset_kind="sync", reset_value=3)
    b.drive(count, mux(en[0], count + 1, count))
    rom = b.rom("lut", 2, 4, [0, 1, 2, 3])
    b.output("val", count)
    b.output("lo", rom.read(count[0:2]))
    b.output("mix", (a ^ count).any())
    b.output("cc", cat(en, a[3]))
    return b.build()


def test_module_skeleton():
    text = to_verilog(build_demo())
    assert text.startswith("module demo (")
    assert text.rstrip().endswith("endmodule")
    assert "input  logic clk" in text
    assert "input  logic [3:0] a" in text
    assert "output logic [3:0] val" in text


def test_register_process_styles():
    text = to_verilog(build_demo())
    assert "always_ff @(posedge clk)" in text
    assert "if (rst) count <= 4'd3;" in text
    assert "count <= count_next;" in text


def test_async_reset_sensitivity():
    b = ModuleBuilder("ar")
    r = b.reg("r", 1, reset_kind="async", reset_value=1)
    b.drive(r, ~r)
    b.output("q", r)
    text = to_verilog(b.build())
    assert "posedge rst" in text


def test_rom_initial_block():
    text = to_verilog(build_demo())
    assert "logic [1:0] lut [0:3];" in text
    assert "lut[3] = 2'd3;" in text


def test_config_memory_write_process():
    b = ModuleBuilder("cfg")
    addr = b.input("addr", 1)
    mem = b.config_mem("t", 4, 2)
    b.output("d", mem.read(addr))
    text = to_verilog(b.build())
    assert "if (t_we)" in text
    assert "t[t_waddr] <= t_wdata;" in text


def test_expression_forms():
    text = to_verilog(build_demo())
    assert "(a ^ count)" in text
    assert "|(" in text  # reduction
    assert "{" in text and "}" in text  # concat (MSB first)


def test_case_expression_rendering():
    b = ModuleBuilder("c")
    s = b.input("s", 2)
    b.output("o", b.case(s, {0: Const(1, 2)}, Const(2, 2)))
    text = to_verilog(b.build())
    assert "case_expr" in text
    assert "default: 2'd2" in text
