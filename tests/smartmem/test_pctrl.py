"""Integration tests for the PCtrl top level and its flows."""

import pytest

from repro.sim.rtlsim import Simulator
from repro.smartmem.config import (
    CACHED_CONFIG,
    UNCACHED_CONFIG,
    PCtrlParams,
    RequestOp,
)
from repro.smartmem.pctrl import build_pctrl


@pytest.fixture(scope="module")
def design():
    return build_pctrl(PCtrlParams())


def program_memories(sim, design, config):
    """Load a configuration through the config write ports."""
    for mem_name, rows in design.bindings(config).items():
        for addr, word in enumerate(rows):
            sim.step(
                {
                    f"{mem_name}_we": 1,
                    f"{mem_name}_waddr": addr,
                    f"{mem_name}_wdata": word,
                }
            )
    sim.reset()


def test_flexible_module_structure(design):
    module = design.flexible
    assert "seq_ucode" in module.memories
    assert "seq_dispatch" in module.memories
    assert "csr" in module.memories
    assert module.memories["seq_ucode"].writable
    # 4 pipes, each with a control FSM, address reg and staging words.
    assert "pipe0_ctl_state" in module.regs
    assert "pipe3_ctl_state" in module.regs
    assert "pipe0_stage0" in module.regs
    assert "pipe0_addr" in module.regs
    assert "seq_upc" in module.regs
    # Request queue state.
    assert "q_head" in module.regs
    assert "q0_op" in module.regs


def test_single_image_for_both_configs(design):
    cached = design.bindings(CACHED_CONFIG)
    uncached = design.bindings(UNCACHED_CONFIG)
    assert cached["seq_ucode"] == uncached["seq_ucode"]
    assert cached["seq_dispatch"] == uncached["seq_dispatch"]
    assert cached["csr"] != uncached["csr"]


def test_uncached_transaction_runs(design):
    sim = Simulator(design.flexible)
    program_memories(sim, design, UNCACHED_CONFIG)
    # Issue an uncached read with an address; watch it flow to pipe 0.
    sim.step(
        {"req_valid": 1, "req_op": int(RequestOp.UNC_READ), "req_addr": 0x42}
    )
    saw_read = False
    saw_ack = False
    for _ in range(8):
        out = sim.step({})
        if out["pipe0_re"]:
            saw_read = True
            assert out["pipe0_addr"] == 0x42
        saw_ack = saw_ack or bool(out["ack"])
    assert saw_read
    assert saw_ack


def test_queue_buffers_requests(design):
    sim = Simulator(design.flexible)
    program_memories(sim, design, UNCACHED_CONFIG)
    # Two back-to-back requests; both must eventually be served.
    sim.step({"req_valid": 1, "req_op": int(RequestOp.UNC_READ), "req_addr": 1})
    sim.step({"req_valid": 1, "req_op": int(RequestOp.UNC_WRITE), "req_addr": 2})
    reads = writes = 0
    for _ in range(16):
        out = sim.step({})
        reads += out["pipe0_re"]
        writes += out["pipe0_we"]
    assert reads >= 1
    assert writes >= 1


def test_cached_line_fill_loops(design):
    sim = Simulator(design.flexible)
    program_memories(sim, design, CACHED_CONFIG)
    # READ_SHARED with a miss streams a full line on pipe 0.
    sim.step(
        {"req_valid": 1, "req_op": int(RequestOp.READ_SHARED), "req_addr": 8}
    )
    reads = 0
    acks = 0
    for _ in range(40):
        out = sim.step({"hit": 0})
        reads += out["pipe0_re"]
        acks += out["ack"]
        if acks:
            break
    assert reads >= CACHED_CONFIG.beats_per_line - 1
    assert acks == 1


def test_annotations_differ_by_mode(design):
    cached = design.annotations(CACHED_CONFIG, pinned_opcodes=True)
    uncached = design.annotations(UNCACHED_CONFIG, pinned_opcodes=True)
    by_reg_c = {a.reg_name: a.values for a in cached}
    by_reg_u = {a.reg_name: a.values for a in uncached}
    # Sequencer: cached mode reaches far more microcode addresses.
    assert len(by_reg_c["seq_upc"]) > 3 * len(by_reg_u["seq_upc"])
    # Pipes: cached mode needs every state, uncached skips directory.
    assert len(by_reg_c["pipe0_ctl_state"]) == 6
    assert len(by_reg_u["pipe0_ctl_state"]) == 4
    # Offsets: cached sweeps the whole line (no annotation); uncached
    # is bounded by the 6-beat block access.
    assert "pipe0_offset" not in by_reg_c
    assert by_reg_u["pipe0_offset"] == (0, 1, 2, 3, 4, 5, 6)


def test_bindings_shape(design):
    bindings = design.bindings(CACHED_CONFIG)
    assert set(bindings) == {"seq_ucode", "seq_dispatch", "csr"}
    ucode = design.flexible.memories["seq_ucode"]
    assert len(bindings["seq_ucode"]) <= ucode.depth
    assert all(0 <= w < (1 << ucode.width) for w in bindings["seq_ucode"])
    assert bindings["csr"][1] == CACHED_CONFIG.loop_init
