"""Unit tests for the data pipe generator."""

from repro.sim.rtlsim import Simulator
from repro.smartmem.config import PCtrlParams
from repro.smartmem.datapipe import (
    ACK,
    DIR_LOOKUP,
    DIR_UPDATE,
    IDLE,
    IN_DIR,
    IN_RD,
    IN_SEL,
    IN_WR,
    STREAM_RD,
    STREAM_WR,
    build_datapipe,
    command_words_for,
    pipe_fsm_spec,
    reachable_pipe_states,
)


def test_pipe_fsm_spec_wellformed():
    spec = pipe_fsm_spec()
    assert spec.num_states == 6
    assert spec.reachable_states() == (0, 1, 2, 3, 4, 5)


def test_pipe_fsm_transitions():
    spec = pipe_fsm_spec()
    sel_rd = (1 << IN_SEL) | (1 << IN_RD)
    sel_wr = (1 << IN_SEL) | (1 << IN_WR)
    sel_dir = (1 << IN_SEL) | (1 << IN_DIR)
    assert spec.step(IDLE, sel_rd)[0] == STREAM_RD
    assert spec.step(IDLE, sel_wr)[0] == STREAM_WR
    assert spec.step(IDLE, sel_dir)[0] == DIR_LOOKUP
    assert spec.step(IDLE, 0)[0] == IDLE
    assert spec.step(STREAM_RD, sel_rd)[0] == STREAM_RD
    assert spec.step(STREAM_RD, 0)[0] == ACK
    assert spec.step(DIR_LOOKUP, 0)[0] == DIR_UPDATE
    assert spec.step(ACK, sel_rd)[0] == IDLE


def test_reachability_without_directory_commands():
    """Uncached programs never issue dir_cmd: directory states die."""
    words = command_words_for(uses_rd=True, uses_wr=True, uses_dir=False)
    states = reachable_pipe_states(words)
    assert DIR_LOOKUP not in states
    assert DIR_UPDATE not in states
    assert set(states) == {IDLE, STREAM_RD, STREAM_WR, ACK}


def test_reachability_with_all_commands():
    words = command_words_for(uses_rd=True, uses_wr=True, uses_dir=True)
    assert reachable_pipe_states(words) == (0, 1, 2, 3, 4, 5)


def test_reachability_read_only():
    words = command_words_for(uses_rd=True, uses_wr=False, uses_dir=False)
    assert set(reachable_pipe_states(words)) == {IDLE, STREAM_RD, ACK}


def test_datapipe_streams_words_into_buffer():
    params = PCtrlParams(word_bits=8, max_line_words=4)
    pipe = build_datapipe(params)
    sim = Simulator(pipe.module)
    # Launch a 3-beat read burst; din changes per beat.
    sim.step({"sel": 1, "cmd_rd": 1, "din": 0xAA})  # IDLE -> STREAM_RD
    sim.step({"sel": 1, "cmd_rd": 1, "din": 0x11})  # beat 0 captured
    sim.step({"sel": 1, "cmd_rd": 1, "din": 0x22})  # beat 1
    out = sim.step({"din": 0x33})  # beat 2; command drops
    assert out["busy"] == 1
    out = sim.step({})  # ACK state
    assert sim.peek_reg("stage0") == 0x11
    assert sim.peek_reg("stage1") == 0x22
    assert sim.peek_reg("stage2") == 0x33
    out = sim.step({})
    assert out["busy"] == 0  # back to IDLE


def test_datapipe_dir_sequence():
    params = PCtrlParams(word_bits=8, max_line_words=4)
    pipe = build_datapipe(params)
    sim = Simulator(pipe.module)
    sim.step({"sel": 1, "cmd_dir": 1})
    out = sim.step({})
    assert out["dir_op"] == 1  # DIR_LOOKUP
    out = sim.step({})
    assert out["dir_op"] == 1  # DIR_UPDATE
    out = sim.step({})
    assert out["dir_op"] == 0  # ACK
    assert out["busy"] == 1
    assert sim.step({})["busy"] == 0


def test_datapipe_ignores_unselected_commands():
    params = PCtrlParams(word_bits=8, max_line_words=4)
    pipe = build_datapipe(params)
    sim = Simulator(pipe.module)
    out = sim.step({"sel": 0, "cmd_rd": 1, "din": 0xFF})
    out = sim.step({})
    assert out["busy"] == 0
    assert sim.peek_reg("stage0") == 0
