"""Unit tests for the PCtrl microprograms."""

from repro.smartmem.config import (
    CACHED_CONFIG,
    UNCACHED_CONFIG,
    MemoryMode,
    PCtrlConfig,
    PCtrlParams,
    RequestOp,
)
from repro.smartmem.protocols import (
    cached_program,
    commands_used,
    pctrl_format,
    program_for,
    uncached_program,
)


def test_format_is_horizontal():
    fmt = pctrl_format(PCtrlParams())
    assert fmt.field("cmd").onehot
    assert fmt.field("pipe").width == 4
    assert fmt.field("cnt").width == 2


def test_cached_program_is_much_larger():
    params = PCtrlParams()
    cached = cached_program(params, CACHED_CONFIG)
    uncached = uncached_program(params, UNCACHED_CONFIG)
    assert cached.length > 3 * uncached.length
    assert cached.length <= 1 << params.ucode_addr_bits


def test_dispatch_covers_all_opcodes():
    params = PCtrlParams()
    program = cached_program(params, CACHED_CONFIG)
    rows = program.dispatch_rows()
    assert len(rows) == 1 << params.opcode_bits
    # NOP dispatches back to idle (address 0).
    assert rows[int(RequestOp.NOP)] == program.labels["idle"]
    # Unused opcodes land on the error handler.
    assert rows[15] == program.labels["bad_op"]


def test_commands_used_differ_by_mode():
    params = PCtrlParams()
    cached = commands_used(cached_program(params, CACHED_CONFIG))
    uncached = commands_used(uncached_program(params, UNCACHED_CONFIG))
    assert "dir_cmd" in cached
    assert "dir_cmd" not in uncached
    assert "word_rd" in uncached
    assert "nack" in uncached


def test_uncached_reachability_is_tiny_under_pinning():
    params = PCtrlParams()
    program = uncached_program(params, UNCACHED_CONFIG)
    full = program.reachable_addresses()
    pinned = program.reachable_addresses(
        opcodes=UNCACHED_CONFIG.allowed_opcodes()
    )
    assert set(pinned) <= set(full)
    # idle + two single-beat routines + the block loop + the handler.
    assert len(pinned) <= 10


def test_cached_reachability_uses_most_of_the_program():
    params = PCtrlParams()
    program = cached_program(params, CACHED_CONFIG)
    pinned = program.reachable_addresses(
        opcodes=CACHED_CONFIG.allowed_opcodes()
    )
    # Almost all instructions are live in cached mode.
    assert len(pinned) >= program.length - 2


def test_program_for_selects_by_mode():
    params = PCtrlParams()
    assert program_for(params, CACHED_CONFIG).length > program_for(
        params, UNCACHED_CONFIG
    ).length


def test_config_loop_init():
    config = PCtrlConfig(MemoryMode.CACHED, line_words=8, access_width=2)
    assert config.beats_per_line == 4
    assert config.loop_init == 3
    single = PCtrlConfig(MemoryMode.UNCACHED, line_words=4, access_width=1)
    assert single.loop_init == 3
