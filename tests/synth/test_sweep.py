"""Unit tests for sequential sweeping (stuck/dead register removal)."""

from repro.aig.graph import AIG, CONST0, CONST1
from repro.synth.sweep import seq_sweep


def test_self_loop_latch_becomes_constant():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q", reset_kind="sync", reset_value=1)
    aig.set_latch_next(q, q)  # never changes
    aig.add_po("o", aig.and_(q, a))
    swept, removed = seq_sweep(aig)
    assert removed == 1
    assert len(swept.latches) == 0
    # q was stuck at 1, so o == a.
    assert swept.pos[0][1] == swept.pis[0] << 1


def test_reset_constant_feedback_is_stuck():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q", reset_value=0)
    aig.set_latch_next(q, CONST0)  # driven with its own reset value
    aig.add_po("o", aig.or_(q, a))
    swept, removed = seq_sweep(aig)
    assert removed == 1
    assert swept.pos[0][1] == swept.pis[0] << 1


def test_constant_different_from_reset_is_not_stuck():
    aig = AIG()
    q = aig.add_latch("q", reset_value=0)
    aig.set_latch_next(q, CONST1)  # becomes 1 after one cycle
    aig.add_po("o", q)
    swept, removed = seq_sweep(aig)
    assert removed == 0
    assert len(swept.latches) == 1


def test_dead_latch_removed():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q")
    aig.set_latch_next(q, aig.xor(q, a))  # toggling but unobserved
    aig.add_po("o", a)
    swept, removed = seq_sweep(aig)
    assert removed == 1
    assert len(swept.latches) == 0


def test_live_latch_kept():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q")
    aig.set_latch_next(q, aig.xor(q, a))
    aig.add_po("o", q)
    swept, removed = seq_sweep(aig)
    assert removed == 0
    assert len(swept.latches) == 1


def test_chain_of_dead_latches_collapses():
    """Killing a stuck latch strands its upstream pipeline stage."""
    aig = AIG()
    a = aig.add_pi("a")
    stage1 = aig.add_latch("s1")
    stage2 = aig.add_latch("s2")
    aig.set_latch_next(stage1, a)
    aig.set_latch_next(stage2, stage2)  # stuck
    # stage1 only feeds logic that also needs stage2 (stuck at 0).
    aig.add_po("o", aig.and_(stage1, stage2))
    swept, removed = seq_sweep(aig)
    assert removed == 2
    assert len(swept.latches) == 0
    assert swept.pos[0][1] == 0  # and with stuck-0 folds away


def test_mutually_live_latches_survive():
    aig = AIG()
    a = aig.add_pi("a")
    p = aig.add_latch("p")
    q = aig.add_latch("q")
    aig.set_latch_next(p, q)
    aig.set_latch_next(q, aig.xor(p, a))
    aig.add_po("o", p)
    swept, removed = seq_sweep(aig)
    assert removed == 0
    assert len(swept.latches) == 2


def test_unobserved_cycle_removed():
    aig = AIG()
    a = aig.add_pi("a")
    p = aig.add_latch("p")
    q = aig.add_latch("q")
    aig.set_latch_next(p, q)
    aig.set_latch_next(q, aig.xor(p, a))
    aig.add_po("o", a)
    swept, removed = seq_sweep(aig)
    assert removed == 2
