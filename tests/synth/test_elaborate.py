"""Unit tests for RTL -> AIG elaboration (validated by cross-simulation)."""

import random

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.sim.crosscheck import AigSim, crosscheck_rtl_aig
from repro.synth.elaborate import elaborate


def test_combinational_ops_crosscheck():
    b = ModuleBuilder("combo")
    a = b.input("a", 5)
    c = b.input("b", 5)
    b.output("and_", a & c)
    b.output("or_", a | c)
    b.output("xor_", a ^ c)
    b.output("not_", ~a)
    b.output("add", a + c)
    b.output("sub", a - c)
    b.output("eq", a.eq(c))
    b.output("lt", a.lt(c))
    b.output("any", a.any())
    b.output("all", a.all())
    b.output("parity", a.parity())
    b.output("slice", a[1:4])
    b.output("concat", cat(a, c))
    module = b.build()
    result = elaborate(module)
    crosscheck_rtl_aig(module, result.aig, cycles=200, seed=1)


def test_mux_and_case_crosscheck():
    b = ModuleBuilder("muxcase")
    sel = b.input("sel", 3)
    a = b.input("a", 4)
    b_in = b.input("b", 4)
    b.output("m", mux(sel[0], a, b_in))
    b.output("c", b.case(sel, {0: a, 3: b_in, 5: a ^ b_in}, Const(6, 4)))
    module = b.build()
    result = elaborate(module)
    crosscheck_rtl_aig(module, result.aig, cycles=100, seed=2)


def test_counter_crosscheck():
    b = ModuleBuilder("counter")
    en = b.input("en")
    count = b.reg("count", 4, reset_kind="sync", reset_value=5)
    b.drive(count, mux(en[0].eq(1), count + 1, count))
    b.output("value", count)
    module = b.build()
    result = elaborate(module)
    assert len(result.aig.latches) == 4
    assert result.aig.latches[0].reset_kind == "sync"
    # Reset value 5 distributes over the bit latches.
    resets = [latch.reset_value for latch in result.aig.latches]
    assert resets == [1, 0, 1, 0]
    crosscheck_rtl_aig(module, result.aig, cycles=64, seed=3)


def test_rom_elaborates_to_pure_logic():
    b = ModuleBuilder("romtest")
    addr = b.input("addr", 3)
    rom = b.rom("t", 4, 8, [3, 1, 4, 1, 5, 9, 2, 6])
    b.output("data", rom.read(addr))
    module = b.build()
    result = elaborate(module)
    assert len(result.aig.latches) == 0  # bound table: no storage
    crosscheck_rtl_aig(module, result.aig, cycles=64, seed=4)


def test_config_mem_elaborates_to_latch_array():
    b = ModuleBuilder("cfg")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 3, 4)
    b.output("data", mem.read(addr))
    module = b.build()
    result = elaborate(module)
    assert len(result.aig.latches) == 4 * 3  # depth x width storage bits
    crosscheck_rtl_aig(module, result.aig, cycles=200, seed=5)


def test_config_mem_vs_rom_function_after_programming():
    """Programming the flexible memory reproduces the ROM's behaviour."""
    contents = [5, 0, 7, 2]

    flex = ModuleBuilder("flex")
    addr = flex.input("addr", 2)
    mem = flex.config_mem("tbl", 3, 4)
    flex.output("data", mem.read(addr))
    flex_module = flex.build()

    fixed = ModuleBuilder("fixed")
    addr_f = fixed.input("addr", 2)
    rom = fixed.rom("tbl", 3, 4, contents)
    fixed.output("data", rom.read(addr_f))
    fixed_module = fixed.build()

    flex_aig = elaborate(flex_module).aig
    fixed_aig = elaborate(fixed_module).aig

    flex_sim = AigSim(flex_aig)
    # Program the table through the write port, one row per cycle.
    for row, word in enumerate(contents):
        flex_sim.step_words({"tbl_we": 1, "tbl_waddr": row, "tbl_wdata": word})
    fixed_sim = AigSim(fixed_aig)
    for address in range(4):
        got = flex_sim.step_words({"addr": address, "tbl_we": 0})
        want = fixed_sim.step_words({"addr": address})
        assert got["data"] == want["data"]


def test_fold_sync_reset_moves_reset_into_logic():
    b = ModuleBuilder("m")
    en = b.input("en")
    r = b.reg("r", 2, reset_kind="sync", reset_value=0)
    b.drive(r, mux(en[0].eq(1), r + 1, r))
    b.output("o", r)
    module = b.build()

    kept = elaborate(module, fold_sync_reset=False)
    assert kept.aig.latches[0].reset_kind == "sync"
    assert "rst" not in kept.aig.pi_names

    folded = elaborate(module, fold_sync_reset=True)
    assert folded.aig.latches[0].reset_kind == "none"
    assert "rst" in folded.aig.pi_names
    # With rst held low the two behave identically.
    crosscheck_rtl_aig(module, folded.aig, cycles=64, seed=6)


def test_elaboration_is_deterministic():
    b = ModuleBuilder("det")
    a = b.input("a", 8)
    b.output("o", (a + 3) ^ a)
    module = b.build()
    first = elaborate(module)
    second = elaborate(module)
    assert first.aig.num_ands == second.aig.num_ands


def test_invalid_module_rejected():
    b = ModuleBuilder("bad")
    b.reg("r", 2)  # never driven
    with pytest.raises(ValueError):
        elaborate(b._module)


def test_random_modules_crosscheck():
    """Fuzz elaboration with random expression trees."""
    rng = random.Random(13)
    for trial in range(8):
        b = ModuleBuilder(f"fuzz{trial}")
        width = rng.choice([2, 3, 5])
        pool = [b.input(f"i{j}", width) for j in range(3)]
        reg = b.reg("r", width, reset_value=rng.randrange(1 << width))
        pool.append(reg)
        for step in range(10):
            op = rng.randrange(6)
            a = rng.choice(pool)
            c = rng.choice(pool)
            if op == 0:
                pool.append(a & c)
            elif op == 1:
                pool.append(a | c)
            elif op == 2:
                pool.append(a + c)
            elif op == 3:
                pool.append(~a)
            elif op == 4:
                pool.append(mux(a[0], a, c))
            else:
                pool.append(a - c)
        b.drive(reg, pool[-1])
        b.output("out", pool[-2])
        b.output("flag", pool[-1].any())
        module = b.build()
        result = elaborate(module)
        crosscheck_rtl_aig(module, result.aig, cycles=50, seed=trial)
