"""Unit tests for state propagation and folding.

These exercise the paper's Section III examples directly: one-hot
restrictions collapsing downstream logic, and the flop-boundary
behaviour that motivates annotations.
"""

import random

from repro.aig.graph import AIG, lit_compl
from repro.aig import ops
from repro.synth.stateprop import fold_states
from repro.synth.statesets import ValueSet

from tests.helpers import eval_lits, make_word, pi_assign


def test_onescounter_collapses_to_constant_one():
    """The paper's example: a ones-counter of a one-hot bus is 1."""
    aig = AIG()
    y = make_word(aig, "y", 4)
    # Population count == 1 comparator over 4 bits.
    exactly_one = 0
    for i in range(4):
        others_zero = 1
        for j in range(4):
            if j != i:
                others_zero = aig.and_(others_zero, lit_compl(y[j]))
        exactly_one = aig.or_(exactly_one, aig.and_(y[i], others_zero))
    aig.add_po("count_is_one", exactly_one)

    folded, stats = fold_states(
        aig, {"y": (y, ValueSet.onehot(4))}, rounds=2
    )
    assert folded.pos[0][1] == 1  # constant true
    assert folded.num_ands == 0
    assert stats.constants_proven >= 1


def test_pairwise_and_of_onehot_is_zero():
    aig = AIG()
    y = make_word(aig, "y", 4)
    pair = aig.and_(y[1], y[2])
    aig.add_po("pair", pair)
    folded, _ = fold_states(aig, {"y": (y, ValueSet.onehot(4))})
    assert folded.pos[0][1] == 0


def test_fig7_mux_becomes_redundant():
    """y one-hot => (y & (y>>1)) == 0 => the output mux disappears."""
    aig = AIG()
    y = make_word(aig, "y", 8)
    a = make_word(aig, "a", 8)
    b = make_word(aig, "b", 8)
    overlap = [aig.and_(y[i], y[i + 1]) for i in range(7)]
    sel = ops.reduce_or(aig, overlap)
    out = ops.mux_word(aig, sel, a, b)
    for bit, lit in enumerate(out):
        aig.add_po(f"out[{bit}]", lit)
    before = aig.num_ands
    folded, _ = fold_states(aig, {"y": (y, ValueSet.onehot(8))})
    # All that remains is out = b: zero AND nodes.
    assert folded.num_ands == 0
    assert before > 0
    for bit, (name, lit) in enumerate(folded.pos):
        # output bit should be exactly b[bit] (a PI literal).
        node_names = dict(zip(folded.pis, folded.pi_names))
        assert node_names[lit >> 1] == f"b[{bit}]"


def test_folding_preserves_function_on_care_set():
    rng = random.Random(31)
    aig = AIG()
    y = make_word(aig, "y", 4)
    x = make_word(aig, "x", 3)
    pool = list(y) + list(x)
    for _ in range(40):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for index in range(5):
        aig.add_po(f"f{index}", rng.choice(pool) ^ rng.randint(0, 1))

    value_set = ValueSet(4, (1, 2, 4, 8))
    folded, _ = fold_states(aig, {"y": (y, value_set)})

    po_lits_old = [lit for _, lit in aig.pos]
    po_lits_new = [lit for _, lit in folded.pos]
    new_y = [node << 1 for node, name in zip(folded.pis, folded.pi_names) if name.startswith("y")]
    new_x = [node << 1 for node, name in zip(folded.pis, folded.pi_names) if name.startswith("x")]
    for y_val in value_set.values:
        for x_val in range(8):
            want = eval_lits(
                aig, po_lits_old, pi_assign(y, y_val) | pi_assign(x, x_val)
            )
            got = eval_lits(
                folded, po_lits_new,
                pi_assign(new_y, y_val) | pi_assign(new_x, x_val),
            )
            assert got == want, (y_val, x_val)


def test_latch_bus_annotation_folds_downstream():
    """Annotated latch outputs enable cross-flop folding."""
    aig = AIG()
    x = make_word(aig, "x", 2)
    y = [aig.add_latch(f"y[{i}]") for i in range(4)]
    dec = ops.onehot_decode(aig, x)
    for lit, d in zip(y, dec):
        aig.set_latch_next(lit, d)
    # Downstream redundancy: y[0] & y[3].
    aig.add_po("bad", aig.and_(y[0], y[3]))
    # Without annotation nothing happens (the tool's real limitation).
    unfolded, stats = fold_states(aig, {})
    assert stats.constants_proven == 0
    # With the annotation the node folds to zero.
    folded, _ = fold_states(aig, {"y": (y, ValueSet.onehot(4))})
    assert folded.pos[0][1] == 0


def test_trivial_annotation_is_ignored():
    aig = AIG()
    y = make_word(aig, "y", 2)
    aig.add_po("f", aig.and_(y[0], y[1]))
    folded, stats = fold_states(aig, {"y": (y, ValueSet.full(2))})
    assert stats.rounds == 0
    assert folded.num_ands == 1


def test_merge_of_care_equivalent_nodes():
    aig = AIG()
    y = make_word(aig, "y", 2)
    z = aig.add_pi("z")
    # Under care {01, 10}: y0 == ~y1, so y0&z == ~y1&z.
    left = aig.and_(y[0], z)
    right = aig.and_(lit_compl(y[1]), z)
    aig.add_po("l", left)
    aig.add_po("r", right)
    folded, stats = fold_states(aig, {"y": (y, ValueSet(2, (1, 2)))})
    (_, l_lit), (_, r_lit) = folded.pos
    assert l_lit == r_lit
    assert stats.merges_proven >= 1
