"""End-to-end tests of the DesignCompiler facade.

These check the tool behaviours the paper's experiments rely on, at
small scale: partial evaluation of bound tables, FSM inference for
case style only, annotation-driven recovery for table style, and the
state-vector width cap.
"""

import warnings

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.sim.crosscheck import crosscheck_rtl_netlist
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import CompileOptions, StateAnnotation


def build_case_fsm():
    """3-state controller in the vendor-recommended case style."""
    b = ModuleBuilder("fsm_case")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(
        state,
        {
            0: mux(go[0], Const(1, 2), Const(0, 2)),
            1: Const(2, 2),
            2: Const(0, 2),
        },
        Const(0, 2),
    )
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    b.output("done", state.eq(2))
    return b.build()


def build_table_fsm():
    """The same machine as a bound next-state table (flexible style)."""
    # Address = {go, state}: rows indexed by state + 4*go.
    rows = [0, 2, 0, 0, 1, 2, 0, 0]
    b = ModuleBuilder("fsm_table")
    go = b.input("go")
    state = b.reg("state", 2)
    table = b.rom("nxt", 2, 8, rows)
    b.drive(state, table.read(cat(state, go)))
    b.output("busy", state.ne(0))
    b.output("done", state.eq(2))
    return b.build()


def test_compile_produces_valid_netlist():
    result = DesignCompiler().compile(build_case_fsm())
    assert result.area.total > 0
    assert result.area.sequential > 0
    assert result.timing.critical_delay > 0
    assert result.sizing.met  # 5ns is easy for this design
    crosscheck_rtl_netlist(result.module, result.netlist, cycles=100, seed=1)


def test_case_style_fsm_is_inferred():
    result = DesignCompiler().compile(build_case_fsm())
    assert len(result.inferred_fsms) == 1
    assert result.inferred_fsms[0].states == (0, 1, 2)
    assert any("fsm_infer" in line for line in result.log)


def test_table_style_fsm_is_not_inferred():
    result = DesignCompiler().compile(build_table_fsm())
    assert result.inferred_fsms == []


def test_case_and_table_fsm_behave_identically():
    case_result = DesignCompiler().compile(build_case_fsm())
    table_result = DesignCompiler().compile(build_table_fsm())
    # Both netlists must implement the same machine as their RTL.
    crosscheck_rtl_netlist(case_result.module, case_result.netlist, seed=2)
    crosscheck_rtl_netlist(table_result.module, table_result.netlist, seed=2)


def test_annotation_keeps_table_fsm_near_case_area():
    """set_fsm_state_vector keeps the table design near the case design.

    At this tiny scale (a 4-AND machine) the absolute numbers sit in
    the tool's local-minima noise -- the effect the paper itself notes
    ("the bumpy nature of the tool's optimization surface") -- so the
    assertion is a band, not an ordering.  The population-level
    ordering is checked by the Fig. 6 experiment tests.
    """
    compiler = DesignCompiler()
    case_area = compiler.compile(build_case_fsm()).area.total
    annotated = compiler.compile(
        build_table_fsm(),
        CompileOptions(
            state_annotations=[StateAnnotation("state", (0, 1, 2))],
        ),
    )
    crosscheck_rtl_netlist(annotated.module, annotated.netlist, seed=3)
    assert annotated.area.total <= case_area * 1.35


def test_annotation_wins_on_sparse_state_codes():
    """With garbage codes in the table, the annotation pays off."""

    def build(width=4):
        # 3 states on sparse codes {0, 9, 14}; table rows for all other
        # codes hold arbitrary junk the unannotated flow must honour.
        rows = [0] * 32
        codes = {0: 9, 9: 14, 14: 0}
        for state in range(16):
            for go in (0, 1):
                target = codes.get(state, 5)  # junk successor
                if go == 0:
                    target = state if state in codes else 5
                rows[state + 16 * go] = target
        b = ModuleBuilder("sparse_table")
        go = b.input("go")
        state = b.reg("state", width)
        table = b.rom("nxt", width, 32, rows)
        b.drive(state, table.read(cat(state, go)))
        b.output("busy", state.ne(0))
        return b.build()

    compiler = DesignCompiler()
    plain = compiler.compile(build())
    annotated = compiler.compile(
        build(),
        CompileOptions(state_annotations=[StateAnnotation("state", (0, 9, 14))]),
    )
    assert annotated.area.total < plain.area.total
    # Binary re-encoding also drops a flop (3 states fit in 2 bits).
    assert annotated.area.sequential < plain.area.sequential


def test_wide_annotation_is_dropped_with_warning():
    b = ModuleBuilder("wide")
    data = b.input("data", 40)
    reg = b.reg("wide_reg", 40)
    b.drive(reg, data)
    b.output("o", reg.any())
    module = b.build()
    options = CompileOptions(
        state_annotations=[StateAnnotation("wide_reg", (0, 1))],
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = DesignCompiler().compile(module, options)
    assert any("state vector limit" in str(w.message) for w in caught)
    assert result.honoured_annotations == []


def test_bound_table_partially_evaluates():
    """A ROM-backed design synthesizes to pure logic (no config flops)."""
    b = ModuleBuilder("pe")
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, list(range(0, 160, 10)))
    b.output("data", rom.read(addr))
    result = DesignCompiler().compile(b.build())
    assert result.area.sequential == 0
    crosscheck_rtl_netlist(result.module, result.netlist, seed=4)


def test_flexible_table_pays_storage_area():
    """The same function behind a config memory costs flops + mux."""
    def build(flexible):
        b = ModuleBuilder("flex" if flexible else "fixed")
        addr = b.input("addr", 3)
        if flexible:
            mem = b.config_mem("t", 4, 8)
        else:
            mem = b.rom("t", 4, 8, [3, 1, 4, 1, 5, 9, 2, 6])
        b.output("data", mem.read(addr))
        return b.build()

    compiler = DesignCompiler()
    flexible = compiler.compile(build(True))
    fixed = compiler.compile(build(False))
    assert flexible.area.sequential > 0
    assert fixed.area.sequential == 0
    assert flexible.area.total > 3 * fixed.area.total


def test_compile_result_summary_and_log():
    result = DesignCompiler().compile(build_case_fsm())
    text = result.summary()
    assert "um^2" in text
    assert any("map:" in line for line in result.log)
    assert any("optimize" in line for line in result.log)
