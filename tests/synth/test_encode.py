"""Unit tests for FSM re-encoding."""

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, mux
from repro.sim.rtlsim import Simulator
from repro.sim.vectors import random_stimulus
from repro.synth.encode import make_encoding, reencode_register

import random


def build_fsm(num_states=5, width=4):
    """A one-hot-ish FSM on sparse codes to make re-encoding visible."""
    codes = [0, 3, 7, 9, 14][:num_states]
    b = ModuleBuilder("sparse")
    go = b.input("go")
    state = b.reg("state", width, reset_value=codes[0])
    arms = {}
    for index, code in enumerate(codes):
        succ = codes[(index + 1) % len(codes)]
        stay = Const(code, width)
        arms[code] = mux(go[0], Const(succ, width), stay)
    b.drive(state, b.case(state, arms, Const(codes[0], width)))
    b.output("at_start", state.eq(codes[0]))
    b.output("state_out", state)
    return b.build(), tuple(codes)


def test_make_encoding_styles():
    states = (0, 3, 7)
    binary = make_encoding(states, "binary", 4)
    assert binary.new_width == 2
    assert sorted(binary.old_to_new.values()) == [0, 1, 2]
    onehot = make_encoding(states, "onehot", 4)
    assert onehot.new_width == 3
    assert sorted(onehot.old_to_new.values()) == [1, 2, 4]
    gray = make_encoding(states, "gray", 4)
    assert gray.new_width == 2
    assert sorted(gray.old_to_new.values()) == [0, 1, 3]
    same = make_encoding(states, "same", 4)
    assert same.new_width == 4
    assert same.old_to_new == {0: 0, 3: 3, 7: 7}


def test_make_encoding_rejects_unknown_style():
    with pytest.raises(ValueError):
        make_encoding((0, 1), "zebra", 2)


def test_reencode_requires_reset_in_states():
    module, _ = build_fsm()
    with pytest.raises(ValueError, match="reset value"):
        reencode_register(module, "state", (3, 7), "binary")


def test_reencode_unknown_register():
    module, _ = build_fsm()
    with pytest.raises(ValueError, match="unknown register"):
        reencode_register(module, "ghost", (0,), "binary")


@pytest.mark.parametrize("style", ["binary", "onehot", "gray"])
def test_reencoded_fsm_behaves_identically(style):
    module, codes = build_fsm()
    encoded, annotation = reencode_register(module, "state", codes, style)
    assert annotation.reg_name == "state"
    # The annotation describes the new code set.
    expected_width = {"binary": 3, "onehot": 5, "gray": 3}[style]
    assert encoded.regs["state"].width == expected_width

    rng = random.Random(5)
    stimulus = random_stimulus(module, 200, rng)
    ref = Simulator(module)
    new = Simulator(encoded)
    for entry in stimulus:
        want = ref.step(entry)
        got = new.step(entry)
        # state_out is decoded back to *old* codes, so it must match too.
        assert got == want


def test_same_style_returns_original_module():
    module, codes = build_fsm()
    encoded, annotation = reencode_register(module, "state", codes, "same")
    assert encoded is module
    assert annotation.values == codes


def test_binary_width_of_17_states():
    """The paper's s=17 case needs 5 bits; binary re-encoding packs it."""
    states = tuple(range(17))
    encoding = make_encoding(states, "binary", 5)
    assert encoding.new_width == 5
    assert len(set(encoding.old_to_new.values())) == 17
