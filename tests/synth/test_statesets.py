"""Unit tests for the value-set domain and care predicates."""

import random

import pytest

from repro.aig.graph import AIG
from repro.synth.statesets import ValueSet, care_literal

from tests.helpers import eval_lits, make_word, pi_assign


def test_valueset_validation():
    with pytest.raises(ValueError):
        ValueSet(2, ())
    with pytest.raises(ValueError):
        ValueSet(2, (4,))
    with pytest.raises(ValueError):
        ValueSet(2, (1, 1))


def test_onehot_valueset():
    vs = ValueSet.onehot(4)
    assert vs.k == 4
    assert set(vs.values) == {1, 2, 4, 8}
    assert not vs.is_trivial()


def test_full_valueset_is_trivial():
    vs = ValueSet.full(3)
    assert vs.k == 8
    assert vs.is_trivial()


def test_sampling_stays_in_set():
    rng = random.Random(1)
    vs = ValueSet(4, (3, 9, 12))
    for _ in range(50):
        assert vs.sample(rng) in (3, 9, 12)


def test_sample_packed_consistent():
    rng = random.Random(2)
    vs = ValueSet(3, (1, 5))
    packed = vs.sample_packed(rng, 32)
    for pattern in range(32):
        value = 0
        for bit in range(3):
            if packed[bit] >> pattern & 1:
                value |= 1 << bit
        assert value in (1, 5)


def test_care_literal_semantics():
    aig = AIG()
    bus = make_word(aig, "y", 3)
    care = care_literal(aig, bus, ValueSet(3, (2, 5)))
    for value in range(8):
        got = eval_lits(aig, [care], pi_assign(bus, value))
        assert got == (1 if value in (2, 5) else 0)


def test_care_literal_trivial_is_constant_true():
    aig = AIG()
    bus = make_word(aig, "y", 2)
    assert care_literal(aig, bus, ValueSet.full(2)) == 1


def test_care_literal_width_check():
    aig = AIG()
    bus = make_word(aig, "y", 2)
    with pytest.raises(ValueError):
        care_literal(aig, bus, ValueSet(3, (1,)))
