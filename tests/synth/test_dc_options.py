"""Option validation and the annotation width-cap helper."""

import warnings

import pytest

from repro.synth.dc_options import (
    CompileOptions,
    StateAnnotation,
    effective_annotations,
)


def test_effort_rounds_must_be_positive():
    with pytest.raises(ValueError, match="effort_rounds"):
        CompileOptions(effort_rounds=0)
    with pytest.raises(ValueError, match="effort_rounds"):
        CompileOptions(effort_rounds=-3)
    assert CompileOptions(effort_rounds=1).effort_rounds == 1


def test_sweep_support_limit_must_be_none_or_positive():
    with pytest.raises(ValueError, match="sweep_support_limit"):
        CompileOptions(sweep_support_limit=0)
    assert CompileOptions(sweep_support_limit=None).sweep_support_limit is None
    assert CompileOptions(sweep_support_limit=4).sweep_support_limit == 4


def test_effective_annotations_is_a_module_function():
    annotations = [
        StateAnnotation("ok", (0, 1)),
        StateAnnotation("wide", (0, 1)),
        StateAnnotation("ghost", (0,)),
    ]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        honoured = effective_annotations(
            annotations, {"ok": 4, "wide": 40}
        )
    assert [a.reg_name for a in honoured] == ["ok"]
    messages = [str(w.message) for w in caught]
    assert any("state vector limit" in m for m in messages)
    assert any("unknown register" in m for m in messages)


def test_method_form_still_works():
    options = CompileOptions(
        state_annotations=[StateAnnotation("s", (0, 1))]
    )
    assert options.effective_annotations({"s": 2}) == [
        StateAnnotation("s", (0, 1))
    ]
