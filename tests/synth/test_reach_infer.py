"""Unit tests for reachability analysis and FSM inference."""

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.synth.fsm_infer import infer_fsms
from repro.synth.reach import expression_support, reachable_states


def build_case_fsm():
    """3-state FSM, states {0, 1, 2}, coded in 2 bits (3 unused)."""
    b = ModuleBuilder("fsm3")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(
        state,
        {
            0: mux(go[0], Const(1, 2), Const(0, 2)),
            1: Const(2, 2),
            2: Const(0, 2),
        },
        Const(0, 2),
    )
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    return b.build()


def test_expression_support():
    module = build_case_fsm()
    support = expression_support(module.regs["state"].next)
    assert support.inputs == ("go",)
    assert support.regs == ("state",)
    assert support.memories == ()


def test_reachable_states_of_case_fsm():
    module = build_case_fsm()
    assert reachable_states(module, "state") == (0, 1, 2)


def test_reachable_states_with_pinned_input():
    # With go pinned to 0 the machine never leaves state 0.
    module = build_case_fsm()
    assert reachable_states(module, "state", pinned={"go": 0}) == (0,)


def test_reachable_states_from_nonzero_reset():
    b = ModuleBuilder("cycle")
    state = b.reg("state", 3, reset_value=5)
    b.drive(state, b.case(state, {5: Const(6, 3), 6: Const(5, 3)}, Const(5, 3)))
    b.output("o", state)
    module = b.build()
    assert reachable_states(module, "state") == (5, 6)


def test_reachability_rejects_cross_register_dependence():
    b = ModuleBuilder("pair")
    a = b.reg("a", 2)
    c = b.reg("c", 2)
    b.drive(a, c)
    b.drive(c, a + 1)
    b.output("o", a)
    module = b.build()
    with pytest.raises(ValueError, match="other registers"):
        reachable_states(module, "a")


def test_reachability_rejects_writable_memory():
    b = ModuleBuilder("tbl")
    state = b.reg("state", 2)
    mem = b.config_mem("next_tbl", 2, 4)
    b.drive(state, mem.read(state))
    b.output("o", state)
    module = b.build()
    with pytest.raises(ValueError, match="writable memory"):
        reachable_states(module, "state")


def test_reachability_through_rom_is_fine():
    b = ModuleBuilder("romfsm")
    state = b.reg("state", 2)
    rom = b.rom("next_tbl", 2, 4, [1, 3, 0, 1])
    b.drive(state, rom.read(state))
    b.output("o", state)
    module = b.build()
    assert reachable_states(module, "state") == (0, 1, 3)


def test_reachability_input_explosion_guard():
    b = ModuleBuilder("wide")
    wide = b.input("wide", 20)
    state = b.reg("state", 2)
    b.drive(state, mux(wide.any(), Const(1, 2), Const(0, 2)))
    b.output("o", state)
    module = b.build()
    with pytest.raises(ValueError, match="free input bits"):
        reachable_states(module, "state")


def test_unknown_register_raises():
    module = build_case_fsm()
    with pytest.raises(ValueError, match="unknown register"):
        reachable_states(module, "ghost")


def test_infer_finds_case_fsm():
    found = infer_fsms(build_case_fsm())
    assert len(found) == 1
    assert found[0].reg_name == "state"
    assert found[0].states == (0, 1, 2)
    assert found[0].num_states == 3


def test_infer_ignores_table_style():
    """The tool behaviour the paper measures: tables defeat inference."""
    b = ModuleBuilder("tblfsm")
    go = b.input("go")
    state = b.reg("state", 2)
    rom = b.rom("nxt", 2, 8, [0, 1, 2, 0, 1, 2, 0, 0])
    b.drive(state, rom.read(cat(state, go)))
    b.output("busy", state.ne(0))
    module = b.build()
    assert infer_fsms(module) == []


def test_infer_skips_full_range_registers():
    """A counter reaching all codes yields no useful annotation."""
    b = ModuleBuilder("cnt")
    state = b.reg("state", 2)
    b.drive(state, b.case(state, {i: Const((i + 1) % 4, 2) for i in range(4)}, Const(0, 2)))
    b.output("o", state)
    module = b.build()
    assert infer_fsms(module) == []
