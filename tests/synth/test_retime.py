"""Unit tests for backward retiming."""

import random

from repro.aig.graph import AIG
from repro.aig import ops
from repro.synth.retime import retime_backward

from tests.helpers import make_word


def build_decoder_into_flops(n_bits=3, reset_kind="none", reset_value=0):
    """The Fig. 7/8 structure: one-hot decoder feeding a flop bank."""
    aig = AIG()
    x = make_word(aig, "x", n_bits)
    dec = ops.onehot_decode(aig, x)
    y = []
    for i, d in enumerate(dec):
        q = aig.add_latch(f"y[{i}]", reset_kind=reset_kind, reset_value=reset_value)
        aig.set_latch_next(q, d)
        y.append(q)
    # Downstream consumer so the latches are live.
    aig.add_po("any", ops.reduce_or(aig, y))
    for i, q in enumerate(y):
        aig.add_po(f"y_out[{i}]", q)
    return aig


def sequential_trace(aig, stimulus_bits, cycles, seed):
    """Run the AIG for some cycles; returns PO traces per cycle."""
    rng = random.Random(seed)
    state = {latch.node: latch.reset_value for latch in aig.latches}
    trace = []
    name_to_node = dict(zip(aig.pi_names, aig.pis))
    for _ in range(cycles):
        values = {name: rng.getrandbits(1) for name in stimulus_bits}
        pi_values = {
            name_to_node[name]: value
            for name, value in values.items()
            if name in name_to_node
        }
        pos, nxt = aig.evaluate(pi_values, state)
        for latch in aig.latches:
            state[latch.node] = nxt[latch.name]
        trace.append(pos)
    return trace


def test_plain_flops_retime_backward():
    aig = build_decoder_into_flops(3, reset_kind="none")
    assert len(aig.latches) == 8
    retimed, stats = retime_backward(aig)
    assert stats.changed
    assert stats.latches_removed == 8
    assert stats.latches_added == 3
    assert len(retimed.latches) == 3


def test_retimed_design_equivalent_after_settle():
    aig = build_decoder_into_flops(3, reset_kind="none")
    retimed, stats = retime_backward(aig)
    assert stats.changed
    stimulus = [f"x[{i}]" for i in range(3)]
    want = sequential_trace(aig, stimulus, 40, seed=7)
    got = sequential_trace(retimed, stimulus, 40, seed=7)
    # Ignore the first cycle: retiming is equivalence modulo init.
    assert want[1:] == got[1:]


def test_zero_reset_bank_cannot_retime():
    """Dec output is never all-zero, so the reset vector has no pre-image."""
    aig = build_decoder_into_flops(3, reset_kind="async", reset_value=0)
    retimed, stats = retime_backward(aig)
    assert not stats.changed
    assert len(retimed.latches) == 8


def test_satisfiable_reset_bank_retimes():
    """Reset vector = one-hot(0) has the pre-image x = 0."""
    aig = AIG()
    x = make_word(aig, "x", 2)
    dec = ops.onehot_decode(aig, x)
    for i, d in enumerate(dec):
        q = aig.add_latch(f"y[{i}]", reset_kind="sync", reset_value=1 if i == 0 else 0)
        aig.set_latch_next(q, d)
        aig.add_po(f"o[{i}]", q)
    retimed, stats = retime_backward(aig)
    assert stats.changed
    assert len(retimed.latches) == 2
    # The recovered reset pre-image must decode to the original vector.
    assert all(latch.reset_value == 0 for latch in retimed.latches)
    want = sequential_trace(aig, ["x[0]", "x[1]"], 30, seed=3)
    got = sequential_trace(retimed, ["x[0]", "x[1]"], 30, seed=3)
    assert want[1:] == got[1:]


def test_self_feedback_bank_stays():
    """A counter reads its own flops: backward retiming must not fire."""
    aig = AIG()
    q = [aig.add_latch(f"c[{i}]") for i in range(3)]
    nxt = ops.increment(aig, q, 1)
    for lit, n in zip(q, nxt):
        aig.set_latch_next(lit, n)
    aig.add_po("count0", q[0])
    aig.add_po("count1", q[1])
    aig.add_po("count2", q[2])
    retimed, stats = retime_backward(aig)
    assert not stats.changed


def test_unprofitable_move_rejected():
    """1 flop fed by 2 inputs: moving would add flops, so skip."""
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    q = aig.add_latch("q")
    aig.set_latch_next(q, aig.and_(a, b))
    aig.add_po("o", q)
    retimed, stats = retime_backward(aig)
    assert not stats.changed


def test_shared_cone_not_moved():
    """Logic also feeding a PO cannot slide behind the registers."""
    aig = AIG()
    x = make_word(aig, "x", 2)
    dec = ops.onehot_decode(aig, x)
    for i, d in enumerate(dec):
        q = aig.add_latch(f"y[{i}]")
        aig.set_latch_next(q, d)
        aig.add_po(f"o[{i}]", q)
    aig.add_po("leak", dec[0])  # decoder output observed combinationally
    retimed, stats = retime_backward(aig)
    if stats.changed:
        # If anything moved, the leaked cone node must still be correct.
        stimulus = ["x[0]", "x[1]"]
        want = sequential_trace(aig, stimulus, 30, seed=1)
        got = sequential_trace(retimed, stimulus, 30, seed=1)
        assert want[1:] == got[1:]
