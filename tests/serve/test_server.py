"""The compile server end to end: identity with local execution,
caching, single-flight dedup, error paths, and the cache endpoints."""

import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.flow import CompileCache, CompileJob, CompileJobError, compile_many
from repro.serve import CompileServer, RemoteBackend, ServeClient
from repro.rtl.builder import ModuleBuilder


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def sample_jobs(seed=7):
    return [
        CompileJob(
            ("rom", scale), "elaborate,optimize,map,size",
            module=build_rom_module(scale), seed=seed,
        )
        for scale in (3, 5, 7, 11)
    ]


def record_signature(ctx):
    """Everything deterministic about a record stream (wall times are
    the one legitimately run-dependent field)."""
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One shared disk-backed server for the whole module."""
    cache = CompileCache(tmp_path_factory.mktemp("serve") / "cache")
    with CompileServer(cache=cache, workers=2) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


def test_health_and_stats_endpoints(server, client):
    assert client.healthy()
    stats = client.stats()
    assert stats["protocol_version"] == 1
    assert stats["workers"] == 2
    assert {"requests", "jobs", "compiles", "job_errors"} <= set(stats)
    assert stats["cache"]["backend"]["kind"] == "local-dir"
    assert "started" in stats["singleflight"]


def test_served_results_match_local_execution(server, client):
    local = compile_many(sample_jobs(), workers=1)
    served = client.compile(sample_jobs())
    assert list(served) == list(local)  # key order = submission order
    for key in local:
        assert served[key].area.total == local[key].area.total
        assert (
            served[key].timing.critical_delay
            == local[key].timing.critical_delay
        )
        assert record_signature(served[key]) == record_signature(local[key])


def test_warm_batch_is_served_without_compiling(server, client):
    before = client.stats()["compiles"]
    detailed = client.compile_detailed(sample_jobs())
    assert client.stats()["compiles"] == before  # zero new compiles
    assert all(r.cache_hit and not r.deduped for r in detailed)
    assert all(r.error is None for r in detailed)
    # Repeated fetches of one warm entry are byte-identical: the wire
    # context pickles exactly like the server's stored entry.
    fingerprint = detailed[0].fingerprint
    blob = server.cache.export_blob(fingerprint)
    assert blob is not None
    assert pickle.loads(blob).area.total == detailed[0].ctx.area.total


def test_concurrent_identical_jobs_compile_exactly_once(server):
    """The dedup satellite: N clients, same fingerprint, concurrently
    -- exactly one compile happens and everyone gets identical bytes."""
    job = CompileJob(
        "dedup", "elaborate,optimize,map,size",
        module=build_rom_module(13, name="dedup"), seed=99,
    )
    clients = 6
    barrier = threading.Barrier(clients)
    results = [None] * clients

    def submit(i):
        barrier.wait(timeout=30.0)
        results[i] = ServeClient(server.url).compile_detailed([job])[0]

    before = ServeClient(server.url).stats()["compiles"]
    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)

    assert all(r is not None and r.error is None for r in results)
    after = ServeClient(server.url).stats()["compiles"]
    assert after - before == 1  # exactly one compile across 6 clients
    fingerprints = {r.fingerprint for r in results}
    assert len(fingerprints) == 1
    blobs = {pickle.dumps(r.ctx) for r in results}
    assert len(blobs) == 1  # identical bytes for every caller
    # At most one caller was the cold leader; everyone else was either
    # deduped onto the flight or answered from the just-warmed cache.
    cold = [r for r in results if not r.cache_hit and not r.deduped]
    assert len(cold) <= 1


def test_job_failures_come_back_as_results_with_context(server, client):
    # ``elaborate`` with no input design fails server-side; the error
    # crosses back with its pass records instead of poisoning the batch.
    good = sample_jobs()[0]
    bad = CompileJob("bad", "elaborate,optimize,map,size")
    detailed = client.compile_detailed([bad, good])
    assert detailed[0].error is not None and detailed[0].ctx is None
    assert detailed[1].error is None and detailed[1].ctx is not None
    # compile() raises the earliest failure re-keyed to the real key.
    with pytest.raises(CompileJobError) as err:
        client.compile([bad, good])
    assert err.value.key == "bad"


def test_compile_many_server_path_matches_local(server):
    local = compile_many(sample_jobs(seed=23), workers=1)
    via_server = compile_many(sample_jobs(seed=23), server=server.url)
    for key in local:
        assert via_server[key].area.total == local[key].area.total
        assert record_signature(via_server[key]) == record_signature(
            local[key]
        )


def test_compile_many_local_cache_fronts_the_server(server):
    cache = CompileCache()
    jobs_before = ServeClient(server.url).stats()["jobs"]
    first = compile_many(sample_jobs(seed=31), server=server.url, cache=cache)
    assert ServeClient(server.url).stats()["jobs"] == jobs_before + 4
    # Warm local cache: the second run never touches the network.
    second = compile_many(sample_jobs(seed=31), server=server.url, cache=cache)
    assert ServeClient(server.url).stats()["jobs"] == jobs_before + 4
    assert cache.memory_hits == 4
    for key in first:
        assert second[key] is first[key]


def test_cache_endpoints_round_trip(server, client):
    key = "ab" * 32
    url = f"{server.url}/cache/{key}"
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(url)
    assert err.value.code == 404

    request = urllib.request.Request(url, data=b"blob-bytes", method="PUT")
    with urllib.request.urlopen(request) as response:
        assert json.loads(response.read())["stored"] == key
    with urllib.request.urlopen(url) as response:
        assert response.read() == b"blob-bytes"  # verbatim bytes

    # Keys that are not fingerprints never touch the cache.
    bad = urllib.request.Request(
        f"{server.url}/cache/../escape", data=b"x", method="PUT"
    )
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(bad)


def test_remote_backend_reads_and_writes_through_the_server(server):
    backend = RemoteBackend(server.url)
    key = "cd" * 32
    assert backend.load(key) is None
    backend.store(key, b"entry")
    assert backend.load(key) == b"entry"
    stats = backend.stats()
    assert stats["loads"] == 2 and stats["load_hits"] == 1
    assert stats["store_calls"] == 1 and stats["store_errors"] == 0


def test_remote_backend_degrades_to_misses_when_unreachable():
    backend = RemoteBackend("http://127.0.0.1:9", timeout=0.2)
    assert backend.load("ef" * 32) is None
    backend.store("ef" * 32, b"entry")  # must not raise
    stats = backend.stats()
    assert stats["load_errors"] == 1 and stats["store_errors"] == 1


def test_bad_requests_are_rejected_cleanly(server, client):
    request = urllib.request.Request(
        f"{server.url}/compile", data=b"not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request)
    assert err.value.code == 400
    # A version-mismatched batch is a 400 with a JSON error detail.
    body = json.dumps({"version": 999, "jobs": []}).encode()
    request = urllib.request.Request(
        f"{server.url}/compile",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request)
    assert err.value.code == 400
    assert "version" in json.loads(err.value.read())["error"]
    assert client.stats()["bad_requests"] >= 2


def test_tiered_backend_promotes_far_hits(tmp_path):
    from repro.flow import LocalDirBackend
    from repro.serve import TieredBackend

    near = LocalDirBackend(tmp_path / "near")
    far = LocalDirBackend(tmp_path / "far")
    tiered = TieredBackend(near, far)
    key = "12" * 32

    assert tiered.load(key) is None
    far.store(key, b"shared-entry")
    assert tiered.load(key) == b"shared-entry"  # far hit...
    assert near.load(key) == b"shared-entry"  # ...promoted near
    assert tiered.load(key) == b"shared-entry"  # now a near hit
    stats = tiered.stats()
    assert stats["near_hits"] == 1 and stats["far_hits"] == 1
    assert stats["promotions"] == 1

    tiered.store("34" * 32, b"write-through")
    assert near.load("34" * 32) == b"write-through"
    assert far.load("34" * 32) == b"write-through"
