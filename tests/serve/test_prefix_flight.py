"""Prefix-aware single-flight and the server's snapshot endpoints."""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.flow import (
    CompileCache,
    CompileJob,
    PassManager,
    SnapshotPolicy,
    StageSnapshot,
    snapshot_key,
)
from repro.flow.cache import SNAPSHOT_VERSION, _dumps
from repro.flow.core import FlowContext
from repro.rtl.builder import ModuleBuilder
from repro.serve import CompileServer, ServeClient, SingleFlight


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def record_signature(ctx):
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


# ---------------------------------------------------------------------
# SingleFlight prefix keys.
# ---------------------------------------------------------------------

def test_prefix_sharer_waits_once_then_leads():
    flights = SingleFlight()
    release = threading.Event()
    order = []

    def leader_fn():
        order.append("leader")
        release.wait(timeout=10.0)
        return "lead-result"

    outcomes = {}

    def leader():
        outcomes["a"] = flights.do(
            "full-a", leader_fn, prefix_keys=("p1", "p2")
        )

    thread = threading.Thread(target=leader)
    thread.start()
    deadline = time.monotonic() + 10.0
    while flights.inflight() == 0 and time.monotonic() < deadline:
        time.sleep(0.001)

    def sharer():
        # Distinct full key, shared prefix: waits for the leader once,
        # then executes itself.
        outcomes["b"] = flights.do(
            "full-b", lambda: order.append("sharer") or "share-result",
            prefix_keys=("p1", "p3"),
        )

    share = threading.Thread(target=sharer)
    share.start()
    # The sharer must be parked on the leader, not executing.
    time.sleep(0.05)
    assert "sharer" not in order
    release.set()
    thread.join(timeout=10.0)
    share.join(timeout=10.0)

    assert order == ["leader", "sharer"]
    assert outcomes["a"].leader and outcomes["b"].leader
    stats = flights.stats.to_json()
    assert stats["started"] == 2
    assert stats["deduped"] == 0
    assert stats["prefix_waits"] == 1
    assert flights.inflight() == 0


def test_unrelated_prefixes_run_concurrently():
    flights = SingleFlight()
    release = threading.Event()

    def slow():
        release.wait(timeout=10.0)
        return "slow"

    results = {}

    def run_slow():
        results["a"] = flights.do("ka", slow, prefix_keys=("pa",))

    thread = threading.Thread(target=run_slow)
    thread.start()
    deadline = time.monotonic() + 10.0
    while flights.inflight() == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    # No prefix overlap: executes immediately, no wait.
    results["b"] = flights.do("kb", lambda: "fast", prefix_keys=("pb",))
    release.set()
    thread.join(timeout=10.0)
    assert results["b"].value == "fast"
    assert flights.stats.to_json()["prefix_waits"] == 0


def test_prefix_table_entries_are_cleaned_up():
    flights = SingleFlight()
    flights.do("k", lambda: 1, prefix_keys=("p1", "p2"))
    assert flights.inflight() == 0
    with flights._lock:
        assert not flights._prefixes


# ---------------------------------------------------------------------
# Server end to end.
# ---------------------------------------------------------------------

@pytest.fixture()
def server(tmp_path):
    cache = CompileCache(tmp_path / "cache")
    with CompileServer(
        cache=cache,
        workers=2,
        snapshots=SnapshotPolicy(min_pass_seconds=0.0),
    ) as srv:
        yield srv


def test_server_batch_resumes_shared_prefix(server):
    """Two jobs sharing everything up to ``map`` submitted as one
    batch: the second must resume from the first one's snapshots (or
    wait on its flight), never recompute the shared prefix -- and the
    results must equal local from-scratch compiles."""
    module = build_rom_module()
    # size's clock target must differ *from the default*: a default
    # parameter renders out of the spec and the jobs would collapse to
    # one fingerprint.
    specs = {
        "fast": "elaborate,optimize,map,size{clock_period_ns=4.0}",
        "slow": "elaborate,optimize,map,size{clock_period_ns=40.0}",
    }
    jobs = [
        CompileJob(key, spec, module=module, seed=7)
        for key, spec in specs.items()
    ]
    results = ServeClient(server.url).compile(jobs)
    assert set(results) == set(specs)

    stats = ServeClient(server.url).stats()
    assert stats["compiles"] == 2
    assert stats["prefix_resumes"] >= 1
    for key, spec in specs.items():
        local = PassManager.parse(spec).compile(module=module, seed=7)
        assert record_signature(results[key]) == record_signature(local)
        assert results[key].area.total == local.area.total


def test_snapshot_endpoint_roundtrip(server):
    pipeline = PassManager.parse("elaborate,optimize")
    module = build_rom_module()
    fp = pipeline.prefix_fingerprints(module=module, seed=7)[0]
    ctx = FlowContext(module=module, seed=7)
    pipeline.passes[0].execute(ctx)
    blob = _dumps(
        StageSnapshot(
            version=SNAPSHOT_VERSION,
            prefix_spec="elaborate",
            passes_done=1,
            ctx=ctx,
        )
    )
    key = snapshot_key(fp)
    url = f"{server.url}/cache/snap/{key}"

    # A missing snapshot 404s (the best-effort miss old servers give).
    with pytest.raises(urllib.error.HTTPError) as missing:
        urllib.request.urlopen(url)
    assert missing.value.code == 404

    put = urllib.request.Request(url, data=blob, method="PUT")
    with urllib.request.urlopen(put) as response:
        assert response.status in (200, 201, 204)
    with urllib.request.urlopen(url) as response:
        assert response.read() == blob

    # The stored snapshot is live: the server's own cache restores it.
    restored = server.cache.get_snapshot(fp)
    assert restored is not None
    assert restored.aig.canonical_hash() == ctx.aig.canonical_hash()


def test_snapshot_endpoint_rejects_malformed_keys(server):
    for bad in ("nothex", "abc", "../../etc/passwd"):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{server.url}/cache/snap/{bad}")
        assert exc.value.code == 404
