"""Single-flight dedup: one execution per key, everyone gets it."""

import threading
import time

import pytest

from repro.serve import SingleFlight


def test_lone_caller_leads():
    flights = SingleFlight()
    outcome = flights.do("k", lambda: 42)
    assert outcome.value == 42
    assert outcome.leader and not outcome.deduped
    assert flights.inflight() == 0
    stats = flights.stats.to_json()
    assert stats == {
        "started": 1, "deduped": 0, "errors": 0, "prefix_waits": 0,
    }


def test_concurrent_callers_share_exactly_one_execution():
    """The satellite guarantee: N concurrent callers of one key cost
    exactly one execution, and every caller gets the identical
    object."""
    flights = SingleFlight()
    calls = []
    release = threading.Event()
    started = threading.Barrier(9)  # 8 callers + the test thread

    def fn():
        calls.append(threading.get_ident())
        release.wait(timeout=10.0)
        return object()  # identity matters below

    outcomes = [None] * 8

    def caller(i):
        started.wait(timeout=10.0)
        outcomes[i] = flights.do("key", fn)

    threads = [
        threading.Thread(target=caller, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    started.wait(timeout=10.0)
    # Wait for the leader to be inside fn, so every other caller that
    # arrives meanwhile must follow rather than lead.
    deadline = time.monotonic() + 10.0
    while not calls and time.monotonic() < deadline:
        time.sleep(0.001)
    release.set()
    for t in threads:
        t.join(timeout=10.0)

    assert len(calls) == 1  # exactly one execution
    leaders = [o for o in outcomes if o.leader]
    followers = [o for o in outcomes if o.deduped]
    assert len(leaders) == 1 and len(followers) == 7
    shared = leaders[0].value
    assert all(o.value is shared for o in outcomes)
    assert flights.inflight() == 0
    stats = flights.stats.to_json()
    assert stats["started"] == 1 and stats["deduped"] == 7


def test_sequential_calls_each_execute():
    """The table only dedups *in-flight* work; completed flights are
    dropped, so sequential duplicates re-execute (cache layering above
    single-flight is what turns those into hits)."""
    flights = SingleFlight()
    counter = iter(range(100))
    first = flights.do("key", lambda: next(counter))
    second = flights.do("key", lambda: next(counter))
    assert (first.value, second.value) == (0, 1)
    assert first.leader and second.leader


def test_distinct_keys_do_not_dedup():
    flights = SingleFlight()
    release = threading.Event()
    results = {}

    def slow():
        release.wait(timeout=10.0)
        return "slow"

    def run_a():
        results["a"] = flights.do("a", slow)

    thread = threading.Thread(target=run_a)
    thread.start()
    deadline = time.monotonic() + 10.0
    while flights.inflight() == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    results["b"] = flights.do("b", lambda: "fast")  # unrelated key
    release.set()
    thread.join(timeout=10.0)
    assert results["a"].value == "slow" and results["a"].leader
    assert results["b"].value == "fast" and results["b"].leader


def test_leader_error_propagates_to_every_follower():
    flights = SingleFlight()
    release = threading.Event()
    ready = threading.Event()

    def explode():
        ready.set()
        release.wait(timeout=10.0)
        raise RuntimeError("boom")

    errors = []

    def leader():
        with pytest.raises(RuntimeError, match="boom"):
            flights.do("key", explode)

    def follower():
        try:
            flights.do("key", explode)
        except RuntimeError as exc:
            errors.append(exc)

    lead = threading.Thread(target=leader)
    lead.start()
    assert ready.wait(timeout=10.0)
    follows = [threading.Thread(target=follower) for _ in range(3)]
    for t in follows:
        t.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        with flights._lock:
            flight = flights._flights.get("key")
            if flight is not None and flight.followers == 3:
                break
        time.sleep(0.001)
    release.set()
    lead.join(timeout=10.0)
    for t in follows:
        t.join(timeout=10.0)
    assert len(errors) == 3
    assert flights.stats.to_json()["errors"] >= 1
    # A failed flight is dropped: the next caller re-executes.
    assert flights.do("key", lambda: "recovered").value == "recovered"
