"""The wire format: job/batch/result round-trips and rejection."""

import pytest

from repro.flow import CompileJob, CompileJobError, PassManager
from repro.flow.core import PassRecord
from repro.serve import PROTOCOL_VERSION, ProtocolError
from repro.serve.protocol import (
    JobResult,
    decode_batch,
    decode_job,
    decode_result,
    encode_batch,
    encode_job,
    encode_result,
)
from repro.rtl.builder import ModuleBuilder
from repro.synth.dc_options import StateAnnotation
from repro.tech.cells import Library


def build_module(scale=3):
    b = ModuleBuilder("m")
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def sample_job(key=("design", "recipe")):
    return CompileJob(
        key,
        "elaborate,optimize,map,size",
        module=build_module(),
        annotations=(StateAnnotation("state", (0, 1)),),
        library=Library.generic45ish(),
        seed=13,
    )


def test_job_round_trip_preserves_everything_but_the_key():
    job = sample_job()
    index, back = decode_job(encode_job(job, 7))
    assert index == 7
    assert back.key == 7  # wire jobs are keyed positionally
    assert back.pipeline == PassManager.parse(job.pipeline).spec()
    assert back.module.canonical_hash() == job.module.canonical_hash()
    assert back.annotations == job.annotations
    assert back.library.canonical_hash() == job.library.canonical_hash()
    assert back.seed == 13


def test_envelope_is_json_safe_and_readable():
    import json

    envelope = encode_job(sample_job(), 0)
    json.dumps(envelope)  # no bytes, no objects
    assert envelope["pipeline"].startswith("elaborate")
    assert envelope["library"] == "generic45ish"
    assert envelope["seed"] == 13


def test_pipeline_objects_travel_as_rendered_specs():
    job = CompileJob(
        0,
        PassManager.parse("elaborate,optimize,map,size{clock_period_ns=2.0}"),
        module=build_module(),
    )
    envelope = encode_job(job, 0)
    assert "clock_period_ns=2.0" in envelope["pipeline"]


def test_batch_round_trip_and_validation():
    jobs = [sample_job(key=i) for i in range(3)]
    batch = encode_batch(jobs)
    assert batch["version"] == PROTOCOL_VERSION
    assert [j.key for j in decode_batch(batch)] == [0, 1, 2]

    with pytest.raises(ProtocolError, match="version"):
        decode_batch({**batch, "version": PROTOCOL_VERSION + 1})
    with pytest.raises(ProtocolError, match="no job list"):
        decode_batch({"version": PROTOCOL_VERSION})
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_batch([1, 2])
    shuffled = {
        "version": PROTOCOL_VERSION,
        "jobs": [{**batch["jobs"][0], "id": 5}],
    }
    with pytest.raises(ProtocolError, match="batch indices"):
        decode_batch(shuffled)


def test_malformed_job_and_payload_rejected():
    with pytest.raises(ProtocolError, match="malformed job envelope"):
        decode_job({"id": 0})  # no payload
    envelope = encode_job(sample_job(), 0)
    with pytest.raises(ProtocolError, match="undecodable payload"):
        decode_job({**envelope, "payload": "bm90IGEgcGlja2xl"})


def test_error_results_round_trip_with_records():
    record = PassRecord(
        name="explode", stage="aig", wall_time_s=0.0,
        before=None, after=None, failed=True,
    )
    error = CompileJobError(4, "RuntimeError: boom", [record])
    line = encode_result(JobResult(index=4, fingerprint="f" * 64, error=error))
    back = decode_result(line)
    assert back.index == 4 and back.ctx is None
    assert back.error.error == "RuntimeError: boom"
    assert back.error.records[0].name == "explode"
    assert back.error.records[0].failed


def test_undecodable_error_payload_degrades_to_generic_error():
    error = CompileJobError(0, "boom")
    line = encode_result(JobResult(index=0, fingerprint="", error=error))
    line["error"]["payload"] = "bm90IGEgcGlja2xl"  # b"not a pickle"
    back = decode_result(line)
    assert isinstance(back.error, CompileJobError)
    assert "boom" in str(back.error)  # the rendered message survived


def test_malformed_result_line_rejected():
    with pytest.raises(ProtocolError, match="malformed result line"):
        decode_result({"fingerprint": "x"})  # no id
