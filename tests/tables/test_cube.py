"""Unit tests for cubes (implicants)."""

import pytest

from repro.tables.bits import all_ones
from repro.tables.cube import Cube, cover_truth_table


def test_from_string_roundtrip():
    cube = Cube.from_string("1-0")
    assert cube.num_vars == 3
    assert str(cube) == "1-0"
    assert cube.num_literals() == 2
    assert cube.literals() == ((0, False), (2, True))


def test_from_string_rejects_garbage():
    with pytest.raises(ValueError):
        Cube.from_string("1x0")


def test_invalid_value_outside_mask():
    with pytest.raises(ValueError):
        Cube(3, 0b001, 0b010)


def test_contains():
    cube = Cube.from_string("1-0")
    assert cube.contains(0b100)
    assert cube.contains(0b110)
    assert not cube.contains(0b101)
    assert not cube.contains(0b000)


def test_universal_cube_covers_everything():
    cube = Cube.universal(4)
    assert cube.truth_table() == all_ones(4)
    assert cube.num_literals() == 0
    for minterm in range(16):
        assert cube.contains(minterm)


def test_of_minterm_covers_exactly_one():
    cube = Cube.of_minterm(4, 0b1010)
    assert cube.truth_table() == 1 << 0b1010


def test_with_and_without_literal():
    cube = Cube.universal(3).with_literal(1, True)
    assert str(cube) == "-1-"
    assert cube.without_literal(1) == Cube.universal(3)
    with pytest.raises(ValueError):
        cube.with_literal(1, False)
    with pytest.raises(ValueError):
        cube.without_literal(0)


def test_implies():
    small = Cube.from_string("110")
    big = Cube.from_string("1-0")
    assert small.implies(big)
    assert not big.implies(small)
    assert big.implies(big)


def test_intersects():
    a = Cube.from_string("1--")
    b = Cube.from_string("-0-")
    c = Cube.from_string("0--")
    assert a.intersects(b)
    assert not a.intersects(c)


def test_truth_table_matches_contains():
    cube = Cube.from_string("-01")
    table = cube.truth_table()
    for minterm in range(8):
        assert bool(table >> minterm & 1) == cube.contains(minterm)


def test_cover_truth_table_unions():
    cubes = [Cube.from_string("1--"), Cube.from_string("--1")]
    table = cover_truth_table(cubes, 3)
    for minterm in range(8):
        expected = bool(minterm & 0b100) or bool(minterm & 0b001)
        assert bool(table >> minterm & 1) == expected
