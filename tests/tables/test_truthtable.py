"""Unit tests for multi-output truth tables."""

import random

import pytest

from repro.tables.truthtable import TruthTable


def test_from_rows_roundtrip():
    rows = [0b00, 0b01, 0b10, 0b11]
    table = TruthTable.from_rows(2, rows, width=2)
    assert table.rows() == rows
    assert table.num_outputs == 2
    assert table.depth == 4


def test_from_rows_validates_width_and_depth():
    with pytest.raises(ValueError):
        TruthTable.from_rows(1, [0, 1, 2], width=2)
    with pytest.raises(ValueError):
        TruthTable.from_rows(2, [0b100], width=2)


def test_from_function():
    table = TruthTable.from_function(3, 3, lambda a: a ^ 0b101)
    for address in range(8):
        assert table.evaluate(address) == address ^ 0b101


def test_row_bounds_checked():
    table = TruthTable.from_rows(1, [1, 0], width=1)
    with pytest.raises(IndexError):
        table.row(2)


def test_random_is_reproducible():
    a = TruthTable.random(4, 3, random.Random(5))
    b = TruthTable.random(4, 3, random.Random(5))
    assert a == b


def test_random_sparse_bias():
    rng = random.Random(11)
    table = TruthTable.random_sparse(8, 4, 0.1, rng)
    total_ones = sum(table.column_ones(i) for i in range(4))
    total_bits = table.depth * 4
    assert total_ones < total_bits * 0.25


def test_random_sparse_validates_fraction():
    with pytest.raises(ValueError):
        TruthTable.random_sparse(3, 1, 1.5, random.Random(0))


def test_support_and_constants():
    # Output 0 = input 1; output 1 = constant 0.
    table = TruthTable.from_function(3, 2, lambda a: (a >> 1) & 1)
    assert table.support(0) == (1,)
    assert table.support(1) == ()
    assert table.is_constant(1)
    assert not table.is_constant(0)


def test_str_small_table_lists_rows():
    table = TruthTable.from_rows(1, [0b1, 0b0], width=1)
    text = str(table)
    assert "0 -> 1" in text
    assert "1 -> 0" in text
