"""Unit tests for the Quine-McCluskey exact minimizer."""

import random
from itertools import combinations

import pytest

from repro.tables.bits import all_ones
from repro.tables.cube import Cube, cover_truth_table
from repro.tables.qm import minimize_exact, prime_implicants


def test_primes_of_constant_true():
    primes = prime_implicants(all_ones(3), 0, 3)
    assert primes == [Cube.universal(3)]


def test_primes_of_empty():
    assert prime_implicants(0, 0, 3) == []


def test_primes_are_implicants_and_maximal():
    rng = random.Random(7)
    for _ in range(20):
        num_vars = rng.randint(1, 5)
        care = rng.getrandbits(1 << num_vars)
        primes = prime_implicants(care, 0, num_vars)
        for prime in primes:
            table = prime.truth_table()
            assert table & ~care == 0, "prime covers an OFF minterm"
            # Maximality: dropping any literal must leave the care set.
            for var, _ in prime.literals():
                grown = prime.without_literal(var)
                assert grown.truth_table() & ~care != 0


def test_minimize_textbook_example():
    # f = sum m(0,1,2,5,6,7) over 3 vars: minimal cover has 3 cubes.
    on = sum(1 << m for m in [0, 1, 2, 5, 6, 7])
    cubes = minimize_exact(on, 0, 3)
    assert cover_truth_table(cubes, 3) == on
    assert len(cubes) == 3


def test_minimize_with_dontcares():
    # Classic 4-var example: f = m(1,3,7,11,15) d = (0,2,5)
    on = sum(1 << m for m in [1, 3, 7, 11, 15])
    dc = sum(1 << m for m in [0, 2, 5])
    cubes = minimize_exact(on, dc, 4)
    table = cover_truth_table(cubes, 4)
    assert on & ~table == 0
    assert table & ~(on | dc) == 0
    assert len(cubes) <= 2


def test_minimize_rejects_overlap():
    with pytest.raises(ValueError):
        minimize_exact(1, 1, 1)


def brute_minimum_cover_size(on, dc, num_vars):
    """Smallest number of primes covering ``on`` (exponential search)."""
    primes = prime_implicants(on, dc, num_vars)
    for size in range(len(primes) + 1):
        for subset in combinations(primes, size):
            if on & ~cover_truth_table(subset, num_vars) == 0:
                return size
    raise AssertionError("primes do not cover the ON-set")


def test_minimize_is_truly_minimum_on_small_functions():
    rng = random.Random(21)
    for _ in range(15):
        num_vars = rng.randint(1, 4)
        on = rng.getrandbits(1 << num_vars)
        dc = rng.getrandbits(1 << num_vars) & ~on
        cubes = minimize_exact(on, dc, num_vars)
        assert len(cubes) == brute_minimum_cover_size(on, dc, num_vars)
