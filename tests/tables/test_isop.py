"""Unit tests for the Minato-Morreale ISOP minimizer."""

import random

import pytest

from repro.tables.bits import all_ones
from repro.tables.cube import cover_truth_table
from repro.tables.isop import isop


def check_cover(on, dc, num_vars):
    cubes = isop(on, dc, num_vars)
    table = cover_truth_table(cubes, num_vars)
    assert on & ~table == 0, "cover misses ON minterms"
    assert table & ~(on | dc) == 0, "cover touches OFF minterms"
    return cubes


def test_constant_false():
    assert isop(0, 0, 3) == []


def test_constant_true_single_cube():
    cubes = check_cover(all_ones(3), 0, 3)
    assert len(cubes) == 1
    assert cubes[0].num_literals() == 0


def test_single_minterm():
    cubes = check_cover(1 << 5, 0, 3)
    assert len(cubes) == 1
    assert cubes[0].num_literals() == 3


def test_xor_needs_two_cubes():
    # XOR of 2 vars: ON = {01, 10}
    on = (1 << 0b01) | (1 << 0b10)
    cubes = check_cover(on, 0, 2)
    assert len(cubes) == 2


def test_dontcares_simplify():
    # ON = {11}, DC = {01, 10}: a single 1-literal cube suffices.
    on = 1 << 0b11
    dc = (1 << 0b01) | (1 << 0b10)
    cubes = check_cover(on, dc, 2)
    assert len(cubes) == 1
    assert cubes[0].num_literals() == 1


def test_rejects_overlapping_on_dc():
    with pytest.raises(ValueError):
        isop(0b1, 0b1, 1)


def test_rejects_oversized_tables():
    with pytest.raises(ValueError):
        isop(1 << 8, 0, 2)


def test_random_functions_covered(subtests=None):
    rng = random.Random(1234)
    for num_vars in range(1, 9):
        for _ in range(20):
            universe = all_ones(num_vars)
            on = rng.getrandbits(1 << num_vars)
            dc = rng.getrandbits(1 << num_vars) & ~on & universe
            check_cover(on, dc, num_vars)


def test_irredundant_on_random_functions():
    rng = random.Random(99)
    for _ in range(30):
        num_vars = rng.randint(2, 6)
        on = rng.getrandbits(1 << num_vars)
        dc = rng.getrandbits(1 << num_vars) & ~on
        cubes = isop(on, dc, num_vars)
        # Removing any single cube must expose an uncovered ON minterm.
        for skip in range(len(cubes)):
            rest = [c for i, c in enumerate(cubes) if i != skip]
            table = cover_truth_table(rest, num_vars)
            assert on & ~table != 0, "found a redundant cube"
