"""Unit and property tests for the espresso-style cover improver."""

import random

import pytest

from repro.tables.bits import all_ones
from repro.tables.cube import Cube, cover_truth_table
from repro.tables.espresso import expand_cubes, improve_cover, irredundant_cubes
from repro.tables.isop import isop


def cover_cost(cubes):
    return (len(cubes), sum(c.num_literals() for c in cubes))


def test_expand_frees_literals_against_sparse_offset():
    # f = x0 over 3 vars; start from the full minterm cube of 0b111.
    on = 0
    for m in range(8):
        if m & 1:
            on |= 1 << m
    off = all_ones(3) & ~on
    start = [Cube.of_minterm(3, 0b111)]
    expanded = expand_cubes(start, off, 3)
    assert len(expanded) == 1
    assert expanded[0].num_literals() == 1  # grew to the prime "--1"
    assert str(expanded[0]) == "--1"


def test_expand_drops_subsumed_cubes():
    on = all_ones(2)
    start = [Cube.of_minterm(2, 0), Cube.of_minterm(2, 3)]
    expanded = expand_cubes(start, 0, 2)
    assert len(expanded) == 1
    assert expanded[0] == Cube.universal(2)


def test_irredundant_removes_patch_cube():
    # Two primes cover everything; a middle minterm cube is redundant.
    a = Cube.from_string("1-")
    b = Cube.from_string("-1")
    patch = Cube.from_string("11")
    on = cover_truth_table([a, b], 2)
    kept = irredundant_cubes([a, patch, b], on, 2)
    assert patch not in kept
    assert cover_truth_table(kept, 2) == on


def test_improve_cover_validates_input():
    with pytest.raises(ValueError, match="misses"):
        improve_cover([], 0b1, 0, 1)
    with pytest.raises(ValueError, match="touches"):
        improve_cover([Cube.universal(1)], 0b10, 0, 1)


def test_improve_never_worse_than_isop():
    rng = random.Random(2011)
    for _ in range(60):
        num_vars = rng.randint(2, 7)
        on = rng.getrandbits(1 << num_vars)
        dc = rng.getrandbits(1 << num_vars) & ~on
        base = isop(on, dc, num_vars)
        improved = improve_cover(base, on, dc, num_vars)
        # Still a valid cover.
        table = cover_truth_table(improved, num_vars)
        assert on & ~table == 0
        assert table & ~(on | dc) == 0
        # Never worse under (cubes, literals).
        assert cover_cost(improved) <= cover_cost(base)


def test_improve_actually_helps_sometimes():
    """Starting from raw minterm covers, improvement is dramatic."""
    rng = random.Random(5)
    wins = 0
    for _ in range(20):
        num_vars = rng.randint(3, 6)
        on = rng.getrandbits(1 << num_vars)
        if on == 0:
            continue
        minterms = [
            Cube.of_minterm(num_vars, m)
            for m in range(1 << num_vars)
            if on >> m & 1
        ]
        improved = improve_cover(minterms, on, 0, num_vars)
        if cover_cost(improved) < cover_cost(minterms):
            wins += 1
    assert wins >= 15
