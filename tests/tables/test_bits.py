"""Unit tests for integer truth-table bit algebra."""

import pytest

from repro.tables.bits import (
    all_ones,
    cofactor0,
    cofactor1,
    minterm_iter,
    popcount,
    tt_depends_on,
    tt_support,
    var_mask,
)


def brute_table(func, num_vars):
    table = 0
    for minterm in range(1 << num_vars):
        if func(minterm):
            table |= 1 << minterm
    return table


def test_all_ones_sizes():
    assert all_ones(0) == 0b1
    assert all_ones(1) == 0b11
    assert all_ones(3) == 0xFF


def test_var_mask_matches_projection():
    for num_vars in range(1, 7):
        for var in range(num_vars):
            expected = brute_table(lambda m: m >> var & 1, num_vars)
            assert var_mask(var, num_vars) == expected


def test_var_mask_rejects_out_of_range():
    with pytest.raises(ValueError):
        var_mask(3, 3)
    with pytest.raises(ValueError):
        var_mask(-1, 3)


def test_cofactors_of_projection():
    num_vars = 4
    table = var_mask(2, num_vars)
    assert cofactor1(table, 2, num_vars) == all_ones(num_vars)
    assert cofactor0(table, 2, num_vars) == 0


def test_cofactors_agree_with_bruteforce():
    num_vars = 5
    func = lambda m: ((m >> 1) ^ (m >> 3) ^ m) & 1  # noqa: E731
    table = brute_table(func, num_vars)
    for var in range(num_vars):
        expected1 = brute_table(lambda m: func(m | (1 << var)), num_vars)
        expected0 = brute_table(lambda m: func(m & ~(1 << var)), num_vars)
        assert cofactor1(table, var, num_vars) == expected1
        assert cofactor0(table, var, num_vars) == expected0


def test_support_detects_only_real_dependencies():
    num_vars = 5
    table = brute_table(lambda m: (m >> 0 & 1) & (m >> 4 & 1), num_vars)
    assert tt_support(table, num_vars) == (0, 4)
    assert tt_depends_on(table, 0, num_vars)
    assert not tt_depends_on(table, 2, num_vars)


def test_support_of_constants_is_empty():
    assert tt_support(0, 4) == ()
    assert tt_support(all_ones(4), 4) == ()


def test_minterm_iter_ascending():
    assert list(minterm_iter(0b101001)) == [0, 3, 5]
    assert list(minterm_iter(0)) == []


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount(all_ones(6)) == 64
