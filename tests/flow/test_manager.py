"""The pass-manager API: specs, registry, combinators, stages."""

import pytest

from repro.flow import (
    PASS_REGISTRY,
    Conditional,
    FlowContext,
    FlowError,
    Pass,
    PassManager,
    register_pass,
    registered_pass_names,
    until_converged,
)
from repro.flow.passes import BalancePass, RewritePass, SeqSweepPass, TtSweepPass
from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.synth.elaborate import elaborate


def build_case_fsm():
    b = ModuleBuilder("fsm_case")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(
        state,
        {
            0: mux(go[0], Const(1, 2), Const(0, 2)),
            1: Const(2, 2),
            2: Const(0, 2),
        },
        Const(0, 2),
    )
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    b.output("done", state.eq(2))
    return b.build()


def table_aig():
    b = ModuleBuilder("table")
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(3 * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return elaborate(b.build()).aig


# ---------------------------------------------------------------------
# Spec parsing.
# ---------------------------------------------------------------------

def test_parse_round_trips_canonical_specs():
    for spec in (
        "seq_sweep",
        "seq_sweep,tt_sweep,balance,rewrite",
        "seq_sweep,balance,rewrite[2],retime?",
        "elaborate,optimize,map,size",
        "rewrite[3]?",
        "encode{style=gray},elaborate,optimize{effort_rounds=3}",
        "tt_sweep{support_limit=8}[2],size{clock_period_ns=2.0}",
    ):
        assert PassManager.parse(spec).spec() == spec


def test_spec_renders_non_default_parameters():
    """Parameterized passes fingerprint faithfully via spec()."""
    from repro.flow.passes import EncodePass, SizePass, TtSweepPass
    from repro.flow import optimize_loop

    assert EncodePass("gray").spec() == "encode{style=gray}"
    assert EncodePass("binary").spec() == "encode"  # default elided
    assert SizePass(2.0).spec() == "size{clock_period_ns=2.0}"
    assert TtSweepPass(8).spec() == "tt_sweep{support_limit=8}"
    assert optimize_loop(3, 8).spec() == (
        "optimize{effort_rounds=3,support_limit=8}"
    )
    # Differently-parameterized pipelines must not collide.
    a = PassManager([EncodePass("gray")]).spec()
    b = PassManager([EncodePass("onehot")]).spec()
    assert a != b


def test_parse_applies_spec_parameters():
    ctx_spec = PassManager.parse("encode{style=onehot}")
    [encode] = ctx_spec.passes
    assert encode.style == "onehot"
    [size] = PassManager.parse("size{clock_period_ns=2.5}").passes
    assert size.clock_period_ns == 2.5
    [opt] = PassManager.parse("optimize{effort_rounds=4}").passes
    assert opt.max_rounds == 4


def test_parse_rejects_unknown_or_malformed_options():
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("balance{frob=1}")
    with pytest.raises(FlowError, match="malformed option"):
        PassManager.parse("encode{style}")
    # Invalid *values* surface as FlowError too, per the parse contract.
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("encode{style=bogus}")
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("size{clock_period_ns=0}")
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("stateprop{rounds=0}")
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("optimize{effort_rounds=0}")


def test_parse_repeat_count_runs_pass_that_many_times():
    aig = table_aig()
    ctx = PassManager.parse("rewrite[3]").compile(aig=aig)
    names = [r.name for r in ctx.records]
    assert names.count("rewrite") == 3
    # The repeat wrapper adds its own summary record.
    assert "rewrite[3]" in names


def test_parse_unknown_pass_is_an_error():
    with pytest.raises(FlowError, match="unknown pass 'frobnicate'"):
        PassManager.parse("seq_sweep,frobnicate")


def test_parse_rejects_malformed_items():
    for bad in ("balance,,rewrite", "bal ance", "rewrite[0]", "rewrite[x]"):
        with pytest.raises(FlowError):
            PassManager.parse(bad)


def test_parse_errors_quote_the_item_and_its_position():
    """A failing entry is pinpointed: the 1-based item position and
    the item text itself, not just the failure kind."""
    with pytest.raises(
        FlowError, match=r"item 2 \('frobnicate'\)"
    ) as err:
        PassManager.parse("balance,frobnicate,rewrite")
    assert "unknown pass" in str(err.value)

    with pytest.raises(FlowError, match=r"item 3 \('rewrite\[0\]'\)"):
        PassManager.parse("balance,tt_sweep,rewrite[0]")

    with pytest.raises(
        FlowError, match=r"item 1 \('encode\{style\}'\)"
    ) as err:
        PassManager.parse("encode{style},balance")
    assert "malformed option" in str(err.value)

    with pytest.raises(FlowError, match="empty pass name at item 2"):
        PassManager.parse("balance,,rewrite")


def test_registry_lists_the_standard_passes():
    names = registered_pass_names()
    for expected in (
        "balance", "elaborate", "encode", "fsm_infer", "map", "optimize",
        "retime", "rewrite", "seq_sweep", "size", "stateprop", "tt_sweep",
    ):
        assert expected in names


def test_registry_collision_is_an_error():
    @register_pass("collision_probe")
    class ProbePass(Pass):
        def run(self, ctx):
            pass

    try:
        with pytest.raises(FlowError, match="already registered"):
            @register_pass("collision_probe")
            class ShadowPass(Pass):
                def run(self, ctx):
                    pass
    finally:
        PASS_REGISTRY.pop("collision_probe", None)


# ---------------------------------------------------------------------
# Stages and conditionals.
# ---------------------------------------------------------------------

def test_aig_pass_on_rtl_context_is_a_stage_error():
    with pytest.raises(FlowError, match="needs an elaborated AIG"):
        PassManager([BalancePass()]).compile(build_case_fsm())


def test_rtl_pass_after_elaboration_is_a_stage_error():
    from repro.flow.passes import ElaboratePass

    with pytest.raises(FlowError, match="un-elaborated RTL"):
        PassManager(
            [ElaboratePass(), ElaboratePass()]
        ).compile(build_case_fsm())


def test_conditional_pass_is_skipped_instead_of_erroring():
    ctx = PassManager.parse("balance?").compile(build_case_fsm())
    [record] = ctx.records
    assert record.skipped
    assert record.name == "balance?"
    assert record.messages == ()


def test_conditional_pass_runs_when_applicable():
    ctx = PassManager.parse("balance?").compile(aig=table_aig())
    [record] = ctx.records
    assert not record.skipped
    assert record.name == "balance"


# ---------------------------------------------------------------------
# The fixed-point combinator.
# ---------------------------------------------------------------------

class NullPass(Pass):
    """Changes nothing; until_converged must stop after one round."""

    name = "null"

    def run(self, ctx):
        pass


class ChurnPass(Pass):
    """Always flags progress; until_converged must hit max_rounds."""

    name = "churn"

    def run(self, ctx):
        ctx.mark_progress()


def test_until_converged_terminates_on_no_change():
    ctx = FlowContext(aig=table_aig())
    until_converged(NullPass(), max_rounds=50, label="probe").execute(ctx)
    rounds = [r for r in ctx.records if r.name.startswith("probe[")]
    assert len(rounds) == 1  # converged immediately


def test_until_converged_is_bounded_by_max_rounds():
    ctx = FlowContext(aig=table_aig())
    until_converged(ChurnPass(), max_rounds=5, label="probe").execute(ctx)
    rounds = [r for r in ctx.records if r.name.startswith("probe[")]
    assert len(rounds) == 5


def test_rejected_rounds_are_flagged_in_the_records():
    """A rolled-back round's records carry rejected=True (their stats
    describe discarded work) while its legacy log line is kept."""
    # initial, (before0, after0), (before1, after1), exit aggregate.
    values = iter([100, 100, 90, 90, 120, 120])
    ctx = FlowContext(aig=table_aig())
    until_converged(
        NullPass(), max_rounds=4, label="opt",
        metric=lambda _ctx: next(values),
    ).execute(ctx)
    flags = [(r.name, r.rejected) for r in ctx.records]
    assert ("opt[0]", False) in flags
    assert ("opt[1]", True) in flags  # the grown, rolled-back round
    assert ("null", True) in flags    # its body record too
    depth = ctx.aig.depth()  # NullPass leaves the AIG untouched
    assert ctx.log == [
        f"opt[0]: 100 -> 90 ands, depth {depth}",
        f"opt[1]: 90 -> 120 ands, depth {depth}",
    ]


def test_until_converged_shrinks_a_real_aig():
    aig = table_aig()
    ctx = FlowContext(aig=aig)
    until_converged(
        SeqSweepPass(), TtSweepPass(), BalancePass(), RewritePass(),
        max_rounds=4,
    ).execute(ctx)
    assert ctx.aig.num_ands <= aig.num_ands
    lines = [m for r in ctx.records for m in r.messages]
    assert any(line.startswith("optimize[0]:") for line in lines)


# ---------------------------------------------------------------------
# End-to-end: the acceptance pipeline on an elaborated AIG.
# ---------------------------------------------------------------------

def test_acceptance_pipeline_runs_on_elaborated_aig():
    aig = elaborate(build_case_fsm()).aig
    pipeline = PassManager.parse("seq_sweep,tt_sweep,balance,rewrite")
    ctx = pipeline.compile(aig=aig)
    assert ctx.aig.num_ands <= aig.num_ands
    assert [r.name for r in ctx.records] == [
        "seq_sweep", "tt_sweep", "balance", "rewrite",
    ]
    for record in ctx.records:
        assert record.wall_time_s >= 0.0
        assert record.before is not None and record.after is not None


def test_parse_then_map_and_size_produces_reports():
    module = build_case_fsm()
    pipeline = PassManager.parse("elaborate,optimize,map,size")
    ctx = pipeline.compile(module)
    assert ctx.netlist is not None
    assert ctx.area.total > 0
    assert ctx.timing.critical_delay > 0
    assert ctx.sizing is not None


def test_conditional_wraps_applies_not_just_stage():
    # stateprop? with no annotations is skipped via Pass.applies.
    aig = elaborate(build_case_fsm()).aig
    ctx = PassManager.parse("stateprop?").compile(aig=aig)
    [record] = ctx.records
    assert record.skipped


def test_stateprop_works_on_aig_only_contexts():
    """With no RTL module attached, register widths come from the
    AIG's latch names -- annotated AIG-entry pipelines still fold."""
    from repro.synth.dc_options import StateAnnotation

    aig = elaborate(build_case_fsm()).aig
    ctx = PassManager.parse("seq_sweep,stateprop").compile(
        aig=aig,
        annotations=[StateAnnotation("state", (0, 1, 2))],
    )
    assert ctx.fold_stats is not None
    assert any(line.startswith("stateprop:") for line in ctx.log)


def test_repeat_wrapper_rejects_nonpositive_counts():
    from repro.flow.combinators import Repeat

    with pytest.raises(ValueError):
        Repeat(BalancePass(), 0)


def test_fixed_point_reports_aggregate_progress_to_outer_loops():
    """Nesting composes: an inner fixed point must not erase the
    progress signal an outer combinator is about to read."""
    ctx = FlowContext(aig=table_aig())
    ctx.mark_progress()  # caller's signal
    until_converged(NullPass(), max_rounds=3, label="inner").execute(ctx)
    assert ctx.progress  # preserved, not clobbered by the round reset

    ctx2 = FlowContext(aig=table_aig())
    inner = until_converged(NullPass(), max_rounds=2, label="inner")
    until_converged(
        ChurnPass(), inner, max_rounds=3, label="outer"
    ).execute(ctx2)
    outer_rounds = [r for r in ctx2.records if r.name.startswith("outer[")]
    assert len(outer_rounds) == 3  # churn's progress survives the nest


def test_combinators_reject_nonpositive_round_counts():
    from repro.flow.combinators import WhileProgress

    with pytest.raises(ValueError, match="max_rounds"):
        until_converged(BalancePass(), max_rounds=0)
    with pytest.raises(ValueError, match="max_rounds"):
        WhileProgress(BalancePass(), max_rounds=0)


def test_manager_compile_seeds_annotations_and_seed():
    ctx = PassManager().compile(build_case_fsm(), seed=7)
    assert ctx.seed == 7
    assert ctx.annotations == []


def test_conditional_spec_of_composites():
    cond = Conditional(BalancePass())
    assert cond.spec() == "balance?"


def test_map_pass_library_is_fingerprinted_and_parseable():
    from repro.flow.passes import TechMapPass
    from repro.tech.cells import Library

    assert TechMapPass().spec() == "map"
    pinned = TechMapPass(Library.tsmc90ish())
    assert pinned.spec() == "map{library=tsmc90ish}"
    [reparsed] = PassManager.parse(pinned.spec()).passes
    assert reparsed.library.name == "tsmc90ish"
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("map{library=bogus}")


def test_run_default_flow_honours_options_annotations():
    from repro.flow import run_default_flow
    from repro.synth.dc_options import CompileOptions, StateAnnotation
    from repro.rtl.builder import cat

    b = ModuleBuilder("sparse")
    go = b.input("go")
    state = b.reg("state", 4)
    rows = [0] * 32
    codes = {0: 9, 9: 14, 14: 0}
    for s in range(16):
        for g in (0, 1):
            rows[s + 16 * g] = codes.get(s, 5) if g else (
                s if s in codes else 5
            )
    table = b.rom("nxt", 4, 32, rows)
    b.drive(state, table.read(cat(state, go)))
    b.output("busy", state.ne(0))
    module = b.build()

    options = CompileOptions(
        state_annotations=[StateAnnotation("state", (0, 9, 14))]
    )
    annotated = run_default_flow(module, options)
    assert annotated.annotations  # honoured end to end
    bare = run_default_flow(module, CompileOptions())
    assert annotated.area.total < bare.area.total
