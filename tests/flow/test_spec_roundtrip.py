"""Spec round-trip fidelity: parse(spec()) must reproduce pipelines.

The compile cache keys on ``PassManager.spec()``, so a value that
renders ambiguously (string with a comma, ``"nan"``, ``"true"``)
would silently merge distinct pipelines into one fingerprint.  These
tests pin the quoting/escaping contract of ``render_spec_value`` /
``parse_spec_value`` and the round-trip over every registered pass.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    PASS_REGISTRY,
    FlowError,
    PassManager,
    registered_pass_names,
)
from repro.flow.core import parse_spec_value, render_spec_value
from repro.flow.manager import _split_items


# ---------------------------------------------------------------------
# Value-level round trips.
# ---------------------------------------------------------------------

def test_scalar_values_round_trip():
    for value in (None, True, False, 0, -3, 17, 0.5, -2.25, 1e20, 2.0):
        text = render_spec_value(value)
        parsed = parse_spec_value(text)
        assert parsed == value and type(parsed) is type(value)


def test_hostile_strings_round_trip_quoted():
    for value in (
        "a,b", "x{y}", "k=v", "}", "{", "nan", "inf", "-inf", "Infinity",
        "true", "false", "none", "123", "1_000", "007", "1e3", "",
        " padded ", "tab\tchar", "don't", "back\\slash", "it's''quoted",
        "a?b", "a[2]", '"double"',
    ):
        text = render_spec_value(value)
        parsed = parse_spec_value(text)
        assert parsed == value and type(parsed) is str, (value, text)


@settings(max_examples=200)
@given(st.text(max_size=40))
def test_any_string_round_trips(value):
    parsed = parse_spec_value(render_spec_value(value))
    assert parsed == value and type(parsed) is str


def test_plain_strings_stay_bare():
    assert render_spec_value("gray") == "gray"
    assert render_spec_value("tsmc90ish") == "tsmc90ish"


def test_non_representable_values_are_rejected():
    with pytest.raises(FlowError, match="non-finite"):
        render_spec_value(float("nan"))
    with pytest.raises(FlowError, match="non-finite"):
        render_spec_value(float("inf"))
    with pytest.raises(FlowError, match="not spec-representable"):
        render_spec_value([1, 2])
    with pytest.raises(FlowError, match="not spec-representable"):
        render_spec_value(object())


def test_malformed_quoted_values_are_rejected():
    with pytest.raises(FlowError, match="unterminated"):
        parse_spec_value("'abc")
    with pytest.raises(FlowError, match="unterminated"):
        parse_spec_value("'abc\\'")
    with pytest.raises(FlowError, match="after the closing quote"):
        parse_spec_value("'a'b")


# ---------------------------------------------------------------------
# Spec-level round trips: every registered pass.
# ---------------------------------------------------------------------

def test_every_registered_pass_round_trips_at_defaults():
    for name in registered_pass_names():
        instance = PASS_REGISTRY[name]()
        spec = instance.spec()
        manager = PassManager.parse(spec)
        assert manager.spec() == spec, name
        [parsed] = manager.passes
        assert type(parsed) is type(instance), name


#: Non-default parameterizations exercising every declared knob.
_PARAMETERIZED = [
    ("encode", {"style": "gray"}),
    ("encode", {"style": "onehot"}),
    ("elaborate", {"fold_sync_reset": True}),
    ("tt_sweep", {"support_limit": 8}),
    ("rewrite", {"k": 5, "max_cuts": 9}),
    ("stateprop", {"rounds": 3}),
    ("optimize", {"effort_rounds": 3, "support_limit": 6}),
    ("retime_stage", {"effort_rounds": 1, "max_rounds": 2}),
    ("state_folding", {"effort_rounds": 3, "support_limit": 4}),
    ("resub", {"k": 2, "max_divisors": 8, "support_limit": 6}),
    ("dc_rewrite", {"k": 3, "max_cuts": 4, "tfo_depth": 3,
                    "support_limit": 8}),
    ("map", {"library": "tsmc90ish"}),
    ("map", {"library": "generic45ish"}),
    ("map", {"library": "lowpowerish"}),
    ("size", {"clock_period_ns": 2.5}),
]


def test_parameterized_passes_round_trip():
    for name, params in _PARAMETERIZED:
        instance = PASS_REGISTRY[name](**params)
        spec = instance.spec()
        manager = PassManager.parse(spec)
        assert manager.spec() == spec, (name, params)
        [parsed] = manager.passes
        assert parsed.params() == instance.params(), (name, params)


def test_full_default_flow_spec_round_trips():
    from repro.flow import default_pipeline
    from repro.synth.dc_options import CompileOptions

    for options in (
        CompileOptions(),
        CompileOptions(retime=True, effort_rounds=3),
        CompileOptions(fsm_encoding="same", sweep_support_limit=8),
    ):
        pipeline = default_pipeline(options)
        spec = pipeline.spec()
        assert PassManager.parse(spec).spec() == spec


def test_quoted_values_survive_item_and_option_splitting():
    # A registered pass whose string param needs quoting end-to-end.
    from repro.flow.core import make_pass, register_pass, Pass

    @register_pass("quoted_probe")
    class QuotedProbe(Pass):
        def __init__(self, tag: str = "x") -> None:
            super().__init__()
            self.tag = tag

        def params(self):
            return {"tag": self.tag} if self.tag != "x" else {}

        def run(self, ctx):
            pass

    try:
        for tag in ("a,b", "k=v{}", "nan", "it's", "w\\e[1]?"):
            spec = PassManager([QuotedProbe(tag), QuotedProbe()]).spec()
            manager = PassManager.parse(spec)
            assert manager.spec() == spec, tag
            assert manager.passes[0].tag == tag
            assert manager.passes[1].tag == "x"
    finally:
        from repro.flow import PASS_REGISTRY

        PASS_REGISTRY.pop("quoted_probe", None)


# ---------------------------------------------------------------------
# Unbalanced-brace and malformed-spec errors.
# ---------------------------------------------------------------------

def test_stray_close_brace_is_an_error():
    with pytest.raises(FlowError, match=r"unbalanced '\}'"):
        _split_items("balance},rewrite")
    with pytest.raises(FlowError, match=r"unbalanced '\}'"):
        PassManager.parse("balance}")


def test_unclosed_open_brace_is_an_error():
    with pytest.raises(FlowError, match=r"unbalanced '\{'"):
        _split_items("encode{style=gray")
    with pytest.raises(FlowError, match=r"unbalanced '\{'"):
        PassManager.parse("encode{style=gray,balance")


def test_unterminated_quote_is_an_error():
    with pytest.raises(FlowError, match="unterminated quote"):
        PassManager.parse("encode{style='gray}")


def test_stray_brace_does_not_mis_split_items():
    # The old behaviour clamped depth at zero, so "a}b,c" split as one
    # item "a}b" plus "c" -- now the malformed spec is reported.
    with pytest.raises(FlowError):
        PassManager.parse("seq_sweep}x,balance")
