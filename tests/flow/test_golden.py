"""Golden numbers: the pipeline-backed facade vs the seed monolith.

The seed implementation of ``DesignCompiler.compile`` (one 170-line
function) was run on the quickstart handshake controller before the
flow-API redesign and its area/timing outputs recorded below.  The
redesigned facade must reproduce them exactly -- not approximately:
same passes, same order, same RNG seed, same convergence rule.
"""

import pytest

from repro.controllers import FsmSpec, fsm_to_case_rtl, fsm_to_table_rtl
from repro.controllers.fsm_rtl import table_rows
from repro.pe import bind_tables
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import CompileOptions, StateAnnotation

#: (comb um^2, seq um^2, total um^2, critical delay ns) per variant,
#: captured from the seed flow at 5 ns on examples/quickstart.py's FSM.
SEED_GOLDEN = {
    "flexible": (390.4, 588.2, 978.6, 0.632),
    "bound": (14.6, 34.6, 49.2, 0.435),
    "annotated": (15.2, 34.6, 49.8, 0.522),
    "direct": (15.2, 34.6, 49.8, 0.522),
}


def quickstart_spec():
    """The handshake controller examples/quickstart.py builds."""
    return FsmSpec(
        "handshake",
        num_inputs=1,
        num_outputs=2,
        num_states=3,
        reset_state=0,
        next_state=[[0, 1], [2, 2], [0, 0]],
        output=[[0b00, 0b00], [0b01, 0b01], [0b10, 0b10]],
    )


def test_quickstart_module_matches_seed_flow_exactly():
    spec = quickstart_spec()
    compiler = DesignCompiler()
    options = CompileOptions(clock_period_ns=5.0)

    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = bind_tables(
        flexible,
        {
            "next_mem": table_rows(spec, "next"),
            "out_mem": table_rows(spec, "output"),
        },
    )
    runs = {
        "flexible": compiler.compile(flexible, options),
        "bound": compiler.compile(bound, options),
        "annotated": compiler.compile(
            bound,
            CompileOptions(
                clock_period_ns=5.0,
                state_annotations=[StateAnnotation("state", (0, 1, 2))],
            ),
        ),
        "direct": compiler.compile(fsm_to_case_rtl(spec), options),
    }
    for name, (comb, seq, total, delay) in SEED_GOLDEN.items():
        area = runs[name].area
        timing = runs[name].timing
        assert area.combinational == pytest.approx(comb, abs=1e-9), name
        assert area.sequential == pytest.approx(seq, abs=1e-9), name
        assert area.total == pytest.approx(total, abs=1e-9), name
        assert timing.critical_delay == pytest.approx(delay, abs=1e-9), name


def test_quickstart_direct_log_matches_seed_flow_exactly():
    """The full pass-by-pass log, byte for byte, for the direct style."""
    result = DesignCompiler().compile(
        fsm_to_case_rtl(quickstart_spec()),
        CompileOptions(clock_period_ns=5.0),
    )
    assert result.log == [
        "fsm_infer: state has 3 reachable states",
        "encode: state -> binary (3 states)",
        "elaborate: AIG: pi=1 po=2 latch=2 and=15 depth=8",
        "optimize[0]: 15 -> 4 ands, depth 3",
        "optimize[1]: 4 -> 4 ands, depth 3",
        "stateprop: 0 constants, 0 merges over 0 rounds",
        "optimize[0]: 4 -> 4 ands, depth 3",
        "map: netlist: 6 cells, 2 flops, area 49.8 um^2 "
        "(comb 15.2 / seq 34.6)",
        "size: met=True achieved=0.522 ns (0 upsizes)",
    ]
