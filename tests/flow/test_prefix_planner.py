"""The prefix-trie sweep scheduler: wave planning + exactly-once."""

import pytest

from repro.flow import (
    CompileCache,
    CompileJob,
    PassManager,
    SnapshotPolicy,
    compile_many,
)
from repro.flow.parallel import _plan_waves
from repro.rtl.builder import ModuleBuilder


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def executed(ctx) -> int:
    return len(ctx.records) - int(ctx.meta.get("resumed_records", 0))


def record_signature(ctx):
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


# ---------------------------------------------------------------------
# Wave planning units.
# ---------------------------------------------------------------------

def test_disjoint_jobs_run_in_one_wave_with_no_forced_boundaries():
    waves, forced = _plan_waves([["a", "b"], ["c", "d"], ["e"]])
    assert waves == [[0, 1, 2]]
    assert all(not f for f in forced.values())


def test_shared_prefix_elects_one_leader_per_wave():
    waves, forced = _plan_waves([["a", "b"], ["a", "c"], ["a", "d"]])
    # Job 0 leads the shared prefix "a"; the others defer one wave,
    # then run together (the prefix is covered).
    assert waves == [[0], [1, 2]]
    # Every sharer must snapshot the shared boundary (index 0).
    assert forced[0] == forced[1] == forced[2] == frozenset({0})


def test_nested_shared_prefixes_defer_level_by_level():
    lists = [
        ["a", "x"],            # shares only "a"
        ["a", "b", "c", "y"],  # shares "a", "b", "c"
        ["a", "b", "c", "z"],
        ["a", "b", "w"],       # shares "a", "b"
    ]
    waves, forced = _plan_waves(lists)
    # Wave 1: job 0 claims "a" (jobs 1-3 all want it -> deferred).
    # Wave 2: job 1 claims "b" and "c"; job 3 wants "b" -> deferred.
    # Wave 3: jobs 2 and 3 want nothing uncovered -> together.
    assert waves == [[0], [1], [2, 3]]
    assert forced[0] == frozenset({0})
    assert forced[1] == frozenset({0, 1, 2})
    assert forced[3] == frozenset({0, 1})


def test_identical_full_fingerprints_serialize():
    """Two content-identical jobs (distinct keys) must not race: the
    full fingerprint counts as shared, so the second one waits a wave
    and then hits the cache outright."""
    waves, _ = _plan_waves([["a", "b"], ["a", "b"]])
    assert waves == [[0], [1]]


def test_waves_partition_all_jobs_in_submission_order():
    lists = [["p", "q"], ["p", "r"], ["s"], ["p", "t"]]
    waves, _ = _plan_waves(lists)
    flat = [i for wave in waves for i in wave]
    assert sorted(flat) == list(range(len(lists)))
    for wave in waves:
        assert wave == sorted(wave)  # submission order within a wave


# ---------------------------------------------------------------------
# compile_many end-to-end: exactly-once prefixes, identical results.
# ---------------------------------------------------------------------

def shared_prefix_jobs():
    """Four jobs over one design: two recipes x two clock targets,
    all sharing ``elaborate,optimize`` (and the recipe pairs sharing
    deeper prefixes)."""
    module = build_rom_module()
    specs = {
        ("classic", 20): "elaborate,optimize,map,size{clock_period_ns=20.0}",
        ("classic", 10): "elaborate,optimize,map,size{clock_period_ns=10.0}",
        ("resub", 20):
            "elaborate,optimize,resub,map,size{clock_period_ns=20.0}",
        ("resub", 10):
            "elaborate,optimize,resub,map,size{clock_period_ns=10.0}",
    }
    return [
        CompileJob(key, spec, module=module, seed=7)
        for key, spec in specs.items()
    ]


def test_cold_batch_executes_each_shared_prefix_exactly_once(tmp_path):
    baseline = compile_many(shared_prefix_jobs(), snapshots=False)
    planned = compile_many(
        shared_prefix_jobs(),
        cache=CompileCache(tmp_path / "c"),
        snapshots=SnapshotPolicy(),
    )
    base_total = sum(executed(ctx) for ctx in baseline.values())
    plan_total = sum(executed(ctx) for ctx in planned.values())
    assert plan_total < base_total
    # elaborate,optimize ran once, not four times; elaborate,optimize,
    # resub ran once, not twice -- per variant only the divergent tail
    # (plus one full leader) executes.
    leaders = [
        ctx for ctx in planned.values() if "resumed_at" not in ctx.meta
    ]
    assert len(leaders) == 1  # exactly one job ran from scratch
    for key, ctx in planned.items():
        assert record_signature(ctx) == record_signature(baseline[key])
        assert ctx.area.total == baseline[key].area.total
        assert (
            ctx.aig.canonical_hash() == baseline[key].aig.canonical_hash()
        )


def test_pool_matches_serial_with_prefix_scheduling(tmp_path):
    serial = compile_many(
        shared_prefix_jobs(),
        workers=1,
        cache=CompileCache(tmp_path / "serial"),
        snapshots=SnapshotPolicy(),
    )
    pooled = compile_many(
        shared_prefix_jobs(),
        workers=2,
        cache=CompileCache(tmp_path / "pooled"),
        snapshots=SnapshotPolicy(),
    )
    assert list(serial) == list(pooled)
    for key in serial:
        assert record_signature(serial[key]) == record_signature(pooled[key])
    assert (
        sum(executed(ctx) for ctx in serial.values())
        == sum(executed(ctx) for ctx in pooled.values())
    )


def test_memory_only_pool_skips_wave_barriers_but_stays_correct():
    """Workers cannot share a memory-only cache, so the pool path must
    not serialize into waves for nothing -- and results must still be
    byte-identical to the unscheduled baseline."""
    baseline = compile_many(shared_prefix_jobs(), snapshots=False)
    pooled = compile_many(
        shared_prefix_jobs(),
        workers=2,
        cache=CompileCache(),  # no disk path
        snapshots=SnapshotPolicy(),
    )
    for key in baseline:
        assert record_signature(pooled[key]) == record_signature(
            baseline[key]
        )
        # Nothing to resume from: workers are isolated.
        assert "resumed_at" not in pooled[key].meta


def test_snapshots_off_reproduces_legacy_behaviour(tmp_path):
    with_cache = compile_many(
        shared_prefix_jobs(),
        cache=CompileCache(tmp_path / "c"),
        snapshots=False,
    )
    for ctx in with_cache.values():
        assert "resumed_at" not in ctx.meta
        assert executed(ctx) == len(ctx.records)
