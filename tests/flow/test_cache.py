"""The compile cache: fingerprints, hit/miss/invalidation, disk layer."""

import pytest

from repro.flow import (
    CompileCache,
    FlowError,
    PassManager,
    flow_fingerprint,
)
from repro.flow.core import Pass, register_pass
from repro.rtl.builder import ModuleBuilder
from repro.synth.dc_options import StateAnnotation
from repro.tech.cells import Library


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def full_pipeline():
    return PassManager.parse("elaborate,optimize,map,size")


# ---------------------------------------------------------------------
# Canonical hashes.
# ---------------------------------------------------------------------

def test_module_hash_is_content_addressed():
    assert (
        build_rom_module().canonical_hash()
        == build_rom_module().canonical_hash()
    )
    assert (
        build_rom_module(3).canonical_hash()
        != build_rom_module(5).canonical_hash()
    )
    assert (
        build_rom_module(name="a").canonical_hash()
        != build_rom_module(name="b").canonical_hash()
    )


def test_aig_hash_is_content_addressed():
    from repro.synth.elaborate import elaborate

    one = elaborate(build_rom_module()).aig
    two = elaborate(build_rom_module()).aig
    other = elaborate(build_rom_module(5)).aig
    assert one.canonical_hash() == two.canonical_hash()
    assert one.canonical_hash() != other.canonical_hash()


def test_aig_hash_ignores_dead_nodes():
    from repro.aig.graph import AIG

    def build(extra_dead):
        aig = AIG()
        a = aig.add_pi("a")
        b = aig.add_pi("b")
        aig.add_po("y", aig.and_(a, b))
        if extra_dead:
            aig.and_(aig.not_(a), aig.not_(b))  # unreachable from outputs
        return aig

    assert build(False).canonical_hash() == build(True).canonical_hash()


# ---------------------------------------------------------------------
# Fingerprints.
# ---------------------------------------------------------------------

def test_fingerprint_covers_every_input():
    module = build_rom_module()
    base = dict(module=module, seed=1, library=Library.tsmc90ish())
    fp = flow_fingerprint("elaborate,optimize", **base)
    assert fp == flow_fingerprint("elaborate,optimize", **base)
    assert fp != flow_fingerprint("elaborate", **base)
    assert fp != flow_fingerprint(
        "elaborate,optimize", **{**base, "seed": 2}
    )
    assert fp != flow_fingerprint(
        "elaborate,optimize", **{**base, "module": build_rom_module(5)}
    )
    # A None library resolves to the default (tsmc90ish today) before
    # hashing: the fingerprint covers what TechMapPass will actually
    # map with, so "no library" and "the default library" are the same
    # compile -- and a *changed* default is a different one.
    assert fp == flow_fingerprint(
        "elaborate,optimize", **{**base, "library": None}
    )
    assert fp != flow_fingerprint(
        "elaborate,optimize", **{**base, "library": Library.generic45ish()}
    )
    annotated = flow_fingerprint(
        "elaborate,optimize",
        annotations=(StateAnnotation("state", (0, 1)),),
        **base,
    )
    assert fp != annotated


def test_default_library_is_resolved_before_fingerprinting(monkeypatch):
    """Regression: two jobs differing only in the *resolved* default
    library must miss each other's cache entries.

    ``TechMapPass.run`` falls back to ``default_library()`` when
    neither the pass nor the context pins one; the fingerprint must
    resolve the same default up front, otherwise changing the built-in
    default would replay results mapped against the old library.
    """
    from repro.tech import cells

    module = build_rom_module()
    before = flow_fingerprint("elaborate,optimize,map,size", module=module)
    monkeypatch.setattr(
        cells, "DEFAULT_LIBRARY_FACTORY", Library.generic45ish
    )
    after = flow_fingerprint("elaborate,optimize,map,size", module=module)
    assert before != after
    # And the resolved default equals the explicitly-passed library.
    assert after == flow_fingerprint(
        "elaborate,optimize,map,size",
        module=module,
        library=Library.generic45ish(),
    )


def test_default_library_change_misses_the_cache(monkeypatch):
    """End to end: a warm cache entry compiled under one default
    library is not served once the default changes."""
    from repro.tech import cells

    cache = CompileCache()
    pipeline = full_pipeline()
    first = pipeline.compile(build_rom_module(), cache=cache)
    assert cache.misses == 1
    monkeypatch.setattr(
        cells, "DEFAULT_LIBRARY_FACTORY", Library.generic45ish
    )
    second = pipeline.compile(build_rom_module(), cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    assert second is not first
    assert second.netlist.library.name == "generic45ish"


def test_registered_library_edit_invalidates_fingerprints(monkeypatch):
    """``map{library=...}`` pins libraries by *name* in the spec; the
    fingerprint must cover the names' definitions (the registry
    digest), or editing a registered kit would replay results mapped
    against the old cells."""
    from dataclasses import replace as dc_replace

    from repro.flow import passes

    module = build_rom_module()
    spec = "elaborate,optimize,map{library=generic45ish},size"
    before = flow_fingerprint(spec, module=module)
    assert before == flow_fingerprint(spec, module=module)  # memo is stable

    def tweaked_generic45ish():
        lib = Library.generic45ish()
        inv = lib.cells["INV"]
        lib.cells["INV"] = dc_replace(inv, area=inv.area * 2)
        return lib

    monkeypatch.setitem(
        passes.LIBRARY_FACTORIES, "generic45ish", tweaked_generic45ish
    )
    assert flow_fingerprint(spec, module=module) != before


def test_differently_parameterized_pipelines_fingerprint_apart():
    module = build_rom_module()
    one = PassManager.parse("elaborate,optimize,map,size")
    two = PassManager.parse("elaborate,optimize,map,size{clock_period_ns=2.0}")
    assert flow_fingerprint(one.spec(), module=module) != flow_fingerprint(
        two.spec(), module=module
    )


# ---------------------------------------------------------------------
# Hit / miss / invalidation through PassManager.compile.
# ---------------------------------------------------------------------

def test_memory_cache_hit_returns_same_context():
    cache = CompileCache()
    pipeline = full_pipeline()
    first = pipeline.compile(build_rom_module(), cache=cache)
    second = pipeline.compile(build_rom_module(), cache=cache)
    assert second is first
    assert cache.memory_hits == 1 and cache.misses == 1 and cache.stores == 1


def test_cache_invalidates_on_param_seed_and_module_change():
    cache = CompileCache()
    pipeline = full_pipeline()
    pipeline.compile(build_rom_module(), cache=cache)
    # Different pass parameter -> miss.
    PassManager.parse("elaborate,optimize,map,size{clock_period_ns=2.0}").compile(
        build_rom_module(), cache=cache
    )
    # Different seed -> miss.
    pipeline.compile(build_rom_module(), seed=99, cache=cache)
    # Edited module -> miss.
    pipeline.compile(build_rom_module(5), cache=cache)
    assert cache.hits == 0 and cache.misses == 4 and cache.stores == 4


def test_disk_cache_survives_a_new_cache_instance(tmp_path):
    pipeline = full_pipeline()
    warm = CompileCache(tmp_path / "cache")
    first = pipeline.compile(build_rom_module(), cache=warm)

    executed = []

    @register_pass("disk_probe")
    class DiskProbe(Pass):
        stage = "rtl"

        def run(self, ctx):
            executed.append(self.name)

    try:
        probed = PassManager.parse("disk_probe,elaborate,optimize,map,size")
        cold = CompileCache(tmp_path / "cache")
        probed.compile(build_rom_module(), cache=cold)
        assert executed == ["disk_probe"]  # cold: the pipeline really ran
        again = CompileCache(tmp_path / "cache")
        result = probed.compile(build_rom_module(), cache=again)
        assert executed == ["disk_probe"]  # warm: zero passes executed
        assert again.disk_hits == 1 and again.misses == 0
        assert result.area.total == first.area.total
    finally:
        from repro.flow import PASS_REGISTRY

        PASS_REGISTRY.pop("disk_probe", None)


def test_corrupt_disk_entry_reads_as_miss(tmp_path):
    cache = CompileCache(tmp_path / "cache")
    pipeline = full_pipeline()
    pipeline.compile(build_rom_module(), cache=cache)
    # Exactly the completed-entry namespace: stage snapshots live
    # under snap/ (three path levels) and are not this test's target.
    [entry] = list((tmp_path / "cache").glob("*/*.pkl"))
    entry.write_bytes(b"not a pickle")
    fresh = CompileCache(tmp_path / "cache")
    ctx = pipeline.compile(build_rom_module(), cache=fresh)
    assert fresh.misses == 1 and fresh.disk_hits == 0
    assert ctx.area is not None


def test_cached_results_equal_uncached_results():
    pipeline = full_pipeline()
    plain = pipeline.compile(build_rom_module())
    cache = CompileCache()
    pipeline.compile(build_rom_module(), cache=cache)
    cached = pipeline.compile(build_rom_module(), cache=cache)
    assert cached.area.total == plain.area.total
    assert cached.log == plain.log


def test_lru_bound_evicts_oldest():
    cache = CompileCache(max_memory_entries=2)
    pipeline = full_pipeline()
    for scale in (3, 5, 7):  # third insert evicts the first
        pipeline.compile(build_rom_module(scale), cache=cache)
    pipeline.compile(build_rom_module(3), cache=cache)  # evicted -> miss
    assert cache.misses == 4
    pipeline.compile(build_rom_module(7), cache=cache)
    assert cache.memory_hits == 1


def test_bad_memory_bound_rejected():
    with pytest.raises(ValueError):
        CompileCache(max_memory_entries=0)


# ---------------------------------------------------------------------
# Fingerprint soundness guards.
# ---------------------------------------------------------------------

def test_modified_library_fingerprints_apart_despite_same_name():
    from dataclasses import replace as dc_replace

    stock = Library.tsmc90ish()
    tweaked = Library.tsmc90ish()
    inv = tweaked.cells["INV"]
    tweaked.cells["INV"] = dc_replace(inv, area=inv.area * 2)
    assert stock.name == tweaked.name
    assert stock.canonical_hash() != tweaked.canonical_hash()
    module = build_rom_module()
    assert flow_fingerprint(
        "elaborate,map", module=module, library=stock
    ) != flow_fingerprint("elaborate,map", module=module, library=tweaked)


def test_pinned_unregistered_library_has_no_spec_form():
    from dataclasses import replace as dc_replace

    from repro.flow.passes import TechMapPass

    tweaked = Library.tsmc90ish()
    inv = tweaked.cells["INV"]
    tweaked.cells["INV"] = dc_replace(inv, area=inv.area * 2)
    with pytest.raises(FlowError, match="no spec form"):
        PassManager([TechMapPass(tweaked)]).spec()
    # The stock library still renders by name.
    assert TechMapPass(Library.tsmc90ish()).spec() == "map{library=tsmc90ish}"


def test_custom_metric_fixed_point_has_no_spec_form():
    from repro.flow import until_converged
    from repro.flow.passes import RewritePass

    loop = until_converged(RewritePass(), metric=lambda ctx: ctx.aig.depth())
    with pytest.raises(FlowError, match="custom metric"):
        loop.spec()
    # The default metric keeps its spec form.
    assert "rewrite" in until_converged(RewritePass()).spec()


# ---------------------------------------------------------------------
# Backend plumbing and concurrency.
# ---------------------------------------------------------------------

def test_stats_dict_shape_and_counters(tmp_path):
    cache = CompileCache(tmp_path / "cache")
    pipeline = full_pipeline()
    pipeline.compile(build_rom_module(), cache=cache)
    pipeline.compile(build_rom_module(), cache=cache)
    stats = cache.stats()
    assert stats["memory_hits"] == 1 and stats["misses"] == 1
    assert stats["hits"] == 1 and stats["stores"] == 1
    assert stats["inflight"] == 0 and stats["memory_entries"] == 1
    assert stats["backend"]["kind"] == "local-dir"
    assert stats["backend"]["entries"] == 1
    import json

    json.dumps(stats)  # the /stats endpoint serves this verbatim
    assert "1 memory hits" in cache.stats_line()


def test_path_and_backend_are_mutually_exclusive(tmp_path):
    from repro.flow import LocalDirBackend

    with pytest.raises(ValueError, match="both"):
        CompileCache(
            tmp_path / "cache", backend=LocalDirBackend(tmp_path / "other")
        )
    # A backend-built cache still exposes .path for worker sharing.
    cache = CompileCache(backend=LocalDirBackend(tmp_path / "b"))
    assert cache.path == tmp_path / "b"
    assert CompileCache().path is None


def test_local_dir_backend_round_trip(tmp_path):
    from repro.flow import LocalDirBackend

    backend = LocalDirBackend(tmp_path / "b")
    key = "ab" + "0" * 62
    assert backend.load(key) is None
    backend.store(key, b"payload")
    assert backend.load(key) == b"payload"
    assert backend.entry_file(key).parent.name == "ab"  # prefix-sharded


def test_export_import_blob_round_trip(tmp_path):
    pipeline = full_pipeline()
    source = CompileCache(tmp_path / "source")
    ctx = pipeline.compile(build_rom_module(), cache=source)
    [key] = [p.stem for p in (tmp_path / "source").glob("*/*.pkl")]
    blob = source.export_blob(key)
    assert blob is not None

    target = CompileCache(tmp_path / "target")
    target.import_blob(key, blob)
    assert target.export_blob(key) == blob  # byte-identical hand-off
    restored = pipeline.compile(build_rom_module(), cache=target)
    assert target.disk_hits == 1 and target.misses == 0
    assert restored.area.total == ctx.area.total

    # A memory-only cache must unpickle to keep the entry at all, so a
    # corrupt upload is rejected (False), never stored or raised.
    memory_only = CompileCache()
    assert memory_only.import_blob(key, b"garbage") is False
    assert memory_only.import_blob(key, blob) is True


def test_cache_is_thread_safe_under_concurrent_traffic(tmp_path):
    """Satellite regression: the memory LRU and counters are shared by
    server handler threads; hammering one cache from many threads must
    neither corrupt the LRU nor lose counter updates."""
    import threading

    cache = CompileCache(tmp_path / "cache", max_memory_entries=4)
    pipeline = full_pipeline()
    contexts = {
        scale: pipeline.compile(build_rom_module(scale))
        for scale in (3, 5, 7, 11, 13)
    }
    errors = []

    def worker(offset):
        try:
            for round_ in range(20):
                scale = (3, 5, 7, 11, 13)[(offset + round_) % 5]
                key = flow_fingerprint(
                    full_pipeline().spec(), module=build_rom_module(scale)
                )
                hit = cache.get(key)
                if hit is None:
                    cache.inflight_begin()
                    try:
                        cache.put(key, contexts[scale])
                    finally:
                        cache.inflight_end()
                else:
                    assert hit.area.total == contexts[scale].area.total
        except Exception as exc:  # surfaced below; threads swallow
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = cache.stats()
    assert stats["inflight"] == 0
    assert stats["hits"] + stats["misses"] == 8 * 20
    assert len(cache._memory) <= 4


def test_anonymous_pass_has_no_spec_form():
    class Anonymous(Pass):
        def run(self, ctx):
            pass

    with pytest.raises(FlowError, match="no spec form"):
        Anonymous().spec()
    with pytest.raises(FlowError, match="no spec form"):
        PassManager([Anonymous()]).compile(
            build_rom_module(), cache=CompileCache()
        )
