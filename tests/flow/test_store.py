"""The run store: serialization round-trips, diffing, cache GC."""

import json
import math
import os

import pytest

from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    PassTotals,
    RatioStats,
)
from repro.flow import CompileCache, SweepStats
from repro.flow.core import AigStats, FlowContext, PassRecord
from repro.flow.store import (
    RUN_STORE_VERSION,
    RunRecord,
    RunStore,
    StoreError,
    diff_runs,
)


# ---------------------------------------------------------------------
# Serialization round-trips.
# ---------------------------------------------------------------------

def test_pass_record_roundtrip_all_fields():
    record = PassRecord(
        name="rewrite",
        stage="aig",
        wall_time_s=0.125,
        before=AigStats(num_ands=100, num_latches=3),
        after=AigStats(num_ands=80, num_latches=3),
        messages=("line one", "line two"),
        skipped=True,
        rejected=True,
        failed=True,
    )
    back = PassRecord.from_json(
        json.loads(json.dumps(record.to_json(), allow_nan=False))
    )
    assert back == record
    assert back.failed and back.rejected and back.skipped
    assert back.delta_ands == -20


def test_pass_record_roundtrip_none_stats():
    record = PassRecord(
        name="fsm_infer", stage="rtl", wall_time_s=0.0,
        before=None, after=None,
    )
    assert PassRecord.from_json(record.to_json()) == record


def test_ratio_stats_roundtrip_encodes_nan_as_null():
    empty = RatioStats.of([])
    data = json.loads(json.dumps(empty.to_json(), allow_nan=False))
    assert data["geomean"] is None
    back = RatioStats.from_json(data)
    assert math.isnan(back.geomean) and back.count == 0

    with_excluded = RatioStats.of([1.0, 2.0, 0.0])
    back = RatioStats.from_json(with_excluded.to_json())
    assert back.excluded == 1
    assert back.geomean == pytest.approx(with_excluded.geomean)


def test_experiment_result_roundtrip():
    result = ExperimentResult("Fig. X", "a description")
    result.points.append(
        ExperimentPoint("series-a", 10.0, 12.5, "p0", {"depth": 4})
    )
    result.points.append(ExperimentPoint("series-a", 5.0, 0.0, "p1"))
    result.tables["Areas"] = "a  b\n1  2"
    result.notes.append("a note")
    result.meta["pipeline"] = "elaborate,optimize"
    result.pass_totals["optimize"] = PassTotals(
        "optimize", calls=4, wall_time_s=1.5, delta_ands=-12,
        failed=1, rejected=2, skipped=3,
    )
    payload = json.dumps(result.to_json(), allow_nan=False)
    back = ExperimentResult.from_json(json.loads(payload))
    assert back.points == result.points
    assert back.tables == result.tables
    assert back.notes == result.notes
    assert back.meta == result.meta
    assert back.pass_totals == result.pass_totals
    # The excluded zero-ratio point survives into the stored summary.
    summary = result.to_json()["series_summaries"]["series-a"]
    assert summary["excluded"] == 1


def test_absorb_flow_aggregates_flags():
    ctx = FlowContext()
    stats = AigStats(10, 0)
    ctx.records.append(PassRecord("p", "aig", 0.5, stats, AigStats(8, 0)))
    ctx.records.append(
        PassRecord("p", "aig", 0.25, stats, stats, rejected=True)
    )
    ctx.records.append(PassRecord("q", "aig", 0.1, None, None, failed=True))
    result = ExperimentResult("r", "d")
    result.absorb_flow([ctx])
    assert result.pass_totals["p"] == PassTotals(
        "p", calls=2, wall_time_s=0.75, delta_ands=-2, rejected=1
    )
    assert result.pass_totals["q"].failed == 1
    assert result.pass_totals["q"].delta_ands == 0


# ---------------------------------------------------------------------
# The store itself.
# ---------------------------------------------------------------------

def _result(points=(), totals=()):
    result = ExperimentResult("Fig. T", "test result")
    result.points.extend(points)
    for item in totals:
        result.pass_totals[item.name] = item
    return result


def _record(commit="c0", figure="figT", **kwargs):
    return RunRecord(
        figure=figure, commit=commit, result=_result(**kwargs),
        scale="small", library="lib0", created_at=123.0,
    )


def test_store_put_get_roundtrip(tmp_path):
    store = RunStore(tmp_path / "runs")
    record = _record(
        points=[ExperimentPoint("s", 1.0, 2.0, "p")],
        totals=[PassTotals("optimize", 1, 0.5, -3)],
    )
    path = store.put(record)
    assert path.is_file()
    back = store.get("c0", "figT")
    assert back.result.points == record.result.points
    assert back.result.pass_totals == record.result.pass_totals
    assert back.scale == "small" and back.library == "lib0"
    assert store.get("c0", "other") is None
    assert store.get("nope", "figT") is None
    assert store.commits() == ["c0"]
    assert store.figures("c0") == ["figT"]
    assert [r.figure for r in store.entries()] == ["figT"]


def test_store_rejects_unsafe_keys(tmp_path):
    store = RunStore(tmp_path)
    with pytest.raises(StoreError):
        store.get("../escape", "figT")
    with pytest.raises(StoreError):
        store.put(_record(commit="a/b"))
    with pytest.raises(StoreError):
        store.get("c0", ".hidden")


def test_store_corrupt_record_is_an_error_not_a_miss(tmp_path):
    store = RunStore(tmp_path)
    store.put(_record())
    store.record_file("c0", "figT").write_text("{not json", encoding="utf-8")
    with pytest.raises(StoreError):
        store.get("c0", "figT")


def test_store_refuses_newer_version(tmp_path):
    store = RunStore(tmp_path)
    store.put(_record())
    entry = store.record_file("c0", "figT")
    data = json.loads(entry.read_text())
    data["version"] = RUN_STORE_VERSION + 1
    entry.write_text(json.dumps(data))
    with pytest.raises(StoreError):
        store.get("c0", "figT")


# ---------------------------------------------------------------------
# Diffing.
# ---------------------------------------------------------------------

def test_diff_identical_runs_is_clean():
    points = [ExperimentPoint("s", 10.0, 12.0, "p0")]
    totals = [PassTotals("optimize", 2, 1.0, -5)]
    diff = diff_runs(
        _record(points=points, totals=totals),
        _record(commit="c1", points=points, totals=totals),
    )
    assert diff.identical
    assert not diff.area_regressions(0.0)
    assert not diff.time_regressions(0.0)
    assert "identical" in diff.render(1.0, 50.0)


def test_diff_flags_area_regression_over_threshold():
    base = _record(points=[ExperimentPoint("s", 10.0, 100.0, "p0")])
    # 3% growth: over a 1% threshold, under a 5% one.
    cur = _record(
        commit="c1", points=[ExperimentPoint("s", 10.0, 103.0, "p0")]
    )
    diff = diff_runs(base, cur)
    assert not diff.identical
    assert len(diff.area_regressions(1.0)) == 1
    assert diff.area_regressions(5.0) == []
    [delta] = diff.changed_points()
    assert delta.y_pct == pytest.approx(3.0)
    assert "<<" in diff.render(1.0, 50.0)


def test_diff_area_improvement_is_not_a_regression():
    base = _record(points=[ExperimentPoint("s", 10.0, 100.0, "p0")])
    cur = _record(
        commit="c1", points=[ExperimentPoint("s", 10.0, 80.0, "p0")]
    )
    assert diff_runs(base, cur).area_regressions(1.0) == []


def test_diff_flags_pass_slowdown_with_noise_floor():
    base = _record(totals=[
        PassTotals("optimize", 2, 1.0, -5),
        PassTotals("balance", 2, 0.010, 0),
    ])
    cur = _record(commit="c1", totals=[
        PassTotals("optimize", 2, 2.0, -5),     # 2x slower: real
        PassTotals("balance", 2, 0.020, 0),     # 2x of 10ms: noise
    ])
    diff = diff_runs(base, cur)
    flagged = diff.time_regressions(50.0, min_time_s=0.05)
    assert [d.name for d in flagged] == ["optimize"]
    # Lowering the floor exposes the tiny pass too.
    assert len(diff.time_regressions(50.0, min_time_s=0.0)) == 2
    assert not diff.structural_changes()


def test_diff_reports_partial_baseline():
    base = _record(
        points=[
            ExperimentPoint("s", 1.0, 1.0, "both"),
            ExperimentPoint("s", 1.0, 1.0, "gone"),
        ],
        totals=[PassTotals("optimize", 1, 1.0, 0)],
    )
    cur = _record(
        commit="c1",
        points=[
            ExperimentPoint("s", 1.0, 1.0, "both"),
            ExperimentPoint("s", 1.0, 1.0, "new"),
        ],
        totals=[PassTotals("rewrite", 1, 1.0, 0)],
    )
    diff = diff_runs(base, cur)
    assert diff.incomplete and not diff.identical
    assert diff.only_in_baseline == ["s/gone"]
    assert diff.only_in_current == ["s/new"]
    assert diff.passes_only_in_baseline == ["optimize"]
    assert diff.passes_only_in_current == ["rewrite"]
    rendered = diff.render(1.0, 50.0)
    assert "only in baseline" in rendered and "only in current" in rendered


def test_diff_notes_library_and_scale_mismatch():
    base = _record()
    cur = RunRecord(
        figure="figT", commit="c1", result=_result(),
        scale="medium", library="lib-other",
    )
    diff = diff_runs(base, cur)
    assert any("librar" in note for note in diff.notes)
    assert any("scale" in note for note in diff.notes)


def test_diff_requires_same_figure():
    with pytest.raises(StoreError):
        diff_runs(_record(), _record(figure="other"))


# ---------------------------------------------------------------------
# Cache GC.
# ---------------------------------------------------------------------

def _fill_cache(tmp_path, sizes_and_ages):
    """A disk cache with fake entries of given (bytes, age-days)."""
    import time as time_mod

    cache = CompileCache(tmp_path / "cache")
    files = []
    for index, (size, age_days) in enumerate(sizes_and_ages):
        key = f"{index:02d}" + "ab" * 31  # 64 hex-ish chars
        entry = cache.backend.entry_file(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(b"x" * size)
        stamp = time_mod.time() - age_days * 86400.0
        os.utime(entry, (stamp, stamp))
        files.append(entry)
    return cache, files


def test_sweep_evicts_oldest_first_for_size_budget(tmp_path):
    cache, files = _fill_cache(
        tmp_path, [(100, 5), (100, 3), (100, 1)]
    )
    stats = cache.sweep(max_bytes=150)
    # Oldest two go; the newest survives.
    assert stats.removed == 2 and stats.scanned == 3
    assert stats.bytes_before == 300 and stats.bytes_after == 100
    assert not files[0].exists() and not files[1].exists()
    assert files[2].exists()


def test_sweep_age_bound_ignores_fresh_entries(tmp_path):
    cache, files = _fill_cache(tmp_path, [(100, 10), (100, 0)])
    stats = cache.sweep(max_age_days=2)
    assert stats.removed == 1
    assert not files[0].exists() and files[1].exists()


def test_sweep_combined_age_then_size(tmp_path):
    cache, files = _fill_cache(
        tmp_path, [(100, 10), (100, 4), (100, 2), (100, 1)]
    )
    stats = cache.sweep(max_bytes=200, max_age_days=5)
    # Age kills the 10-day entry; budget then evicts the 4-day one.
    assert stats.removed == 2
    assert [f.exists() for f in files] == [False, False, True, True]


def test_sweep_noop_cases(tmp_path):
    assert CompileCache().sweep(max_bytes=0).scanned == 0  # memory-only
    cache = CompileCache(tmp_path / "never-written")
    assert cache.sweep(max_bytes=0).scanned == 0
    cache, files = _fill_cache(tmp_path, [(100, 1)])
    stats = cache.sweep()  # no bounds given: nothing evicted
    assert stats.removed == 0 and files[0].exists()
    with pytest.raises(ValueError):
        cache.sweep(max_bytes=-1)
    with pytest.raises(ValueError):
        cache.sweep(max_age_days=-1)


def test_sweep_missing_and_empty_dirs_return_zero_stats(tmp_path):
    """GC of nothing is a no-op, never an error."""
    missing = CompileCache(tmp_path / "does-not-exist")
    stats = missing.sweep(max_bytes=0, max_age_days=0)
    assert stats == SweepStats()
    empty_dir = tmp_path / "empty"
    empty_dir.mkdir()
    stats = CompileCache(empty_dir).sweep(max_bytes=0, max_age_days=0)
    assert stats == SweepStats()
    # A path that is a *file* is as good as no cache.
    file_path = tmp_path / "plain-file"
    file_path.write_bytes(b"x")
    stats = CompileCache(file_path).sweep(max_bytes=0)
    assert stats == SweepStats()


def test_sweep_skips_foreign_files(tmp_path):
    """Files the cache did not write are never counted or deleted."""
    cache, files = _fill_cache(tmp_path, [(100, 10)])
    root = cache.path
    (root / "README.txt").write_text("not an entry")
    (root / "ab").mkdir(exist_ok=True)
    (root / "ab" / "notes.json").write_text("{}")
    impostor = root / "ab" / "dir-named-like-entry.pkl"
    impostor.mkdir()
    (impostor / "inner").write_bytes(b"x")
    stats = cache.sweep(max_bytes=0, max_age_days=0)
    # Only the genuine entry was scanned and removed.
    assert stats.scanned == 1 and stats.removed == 1
    assert not files[0].exists()
    assert (root / "README.txt").exists()
    assert (root / "ab" / "notes.json").exists()
    assert impostor.is_dir() and (impostor / "inner").exists()


def test_track_gc_on_missing_cache_dir_exits_zero(tmp_path, capsys):
    from repro.track import main as track_main

    code = track_main(
        ["gc", "--cache-dir", str(tmp_path / "nope"), "--max-bytes", "1K"]
    )
    assert code == 0
    assert "swept 0/0 entries" in capsys.readouterr().out


def test_swept_cache_still_works(tmp_path):
    """Eviction must read as a miss, not an error, on the next run."""
    from repro.flow import PassManager
    from repro.rtl.builder import ModuleBuilder

    b = ModuleBuilder("m")
    addr = b.input("a", 2)
    b.output("y", ~addr)
    module = b.build()

    cache = CompileCache(tmp_path / "cache")
    pipeline = PassManager.parse("elaborate,optimize")
    pipeline.compile(module, cache=cache)
    swept = cache.sweep(max_bytes=0)
    # One completed entry, plus the stage-boundary snapshot the
    # default policy wrote after elaborate -- both evicted.
    assert swept.removed - swept.removed_snapshots == 1
    assert swept.removed_snapshots == 1
    fresh = CompileCache(tmp_path / "cache")  # cold memory layer
    ctx = pipeline.compile(module, cache=fresh)
    assert ctx.aig is not None and fresh.misses == 1


# ---------------------------------------------------------------------
# Timing-aware diffs (per-point critical_delay / met).
# ---------------------------------------------------------------------

def _timed_point(delay, met=True, y=100.0):
    return ExperimentPoint(
        "s", 10.0, y, "p0", {"critical_delay": delay, "met": met}
    )


def test_diff_carries_per_point_timing():
    diff = diff_runs(
        _record(points=[_timed_point(1.0)]),
        _record(commit="c1", points=[_timed_point(1.2)]),
    )
    [delta] = diff.point_deltas
    assert delta.delay_old == 1.0 and delta.delay_new == 1.2
    assert delta.delay_pct == pytest.approx(20.0)
    assert not delta.met_regressed
    # A pure delay change counts as a changed point.
    assert diff.changed_points() == [delta]
    assert "delay 1.000 -> 1.200" in diff.render(1.0, 50.0)


def test_delay_regressions_gate_on_threshold_and_met():
    base = _record(points=[_timed_point(1.0)])
    slower = _record(commit="c1", points=[_timed_point(1.2)])
    diff = diff_runs(base, slower)
    assert len(diff.delay_regressions(10.0)) == 1
    assert diff.delay_regressions(25.0) == []
    # Losing timing closure regresses at any threshold.
    missed = _record(commit="c2", points=[_timed_point(1.01, met=False)])
    diff = diff_runs(base, missed)
    assert len(diff.delay_regressions(100.0)) == 1
    assert "[target now missed]" in diff.render(1.0, 50.0, 0.05, 100.0)
    assert "<<" in diff.render(1.0, 50.0, 0.05, 100.0)


def test_points_without_timing_are_exempt_from_the_delay_gate():
    old_style = _record(points=[ExperimentPoint("s", 10.0, 100.0, "p0")])
    new_style = _record(commit="c1", points=[_timed_point(9.9)])
    diff = diff_runs(old_style, new_style)
    [delta] = diff.point_deltas
    assert delta.delay_pct is None
    assert diff.delay_regressions(0.0) == []
    # And timing-free runs never become non-identical through timing.
    same = diff_runs(
        old_style,
        _record(commit="c2", points=[ExperimentPoint("s", 10.0, 100.0, "p0")]),
    )
    assert same.identical
