"""PassRecord instrumentation and the legacy log rendering.

The free-form ``CompileResult.log`` the experiments print is now a
*rendering* of structured :class:`PassRecord` entries; these tests pin
both the structured side (wall times, before/after AIG stats) and the
exact legacy string formats the existing expts output depends on.
"""

import re

from repro.flow import render_log
from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, mux
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import CompileOptions, StateAnnotation

#: The legacy log-line formats, exactly as the seed flow emitted them.
LEGACY_LINE_FORMATS = [
    r"fsm_infer: \w+ has \d+ reachable states",
    r"encode: \w+ -> (binary|onehot|gray) \(\d+ states\)",
    r"elaborate: AIG: pi=\d+ po=\d+ latch=\d+ and=\d+ depth=\d+",
    r"seq_sweep: removed \d+ registers",
    r"optimize\[\d+\]: \d+ -> \d+ ands, depth \d+",
    r"retime: moved \d+ flops back to \d+ cone inputs",
    r"stateprop: bus \w+ no longer exists \(dropped\)",
    r"stateprop: \d+ constants, \d+ merges over \d+ rounds",
    r"map: netlist: \d+ cells, \d+ flops, area \d+\.\d um\^2 "
    r"\(comb \d+\.\d / seq \d+\.\d\)",
    r"size: met=(True|False) achieved=\d+\.\d{3} ns \(\d+ upsizes\)",
]


def build_case_fsm():
    b = ModuleBuilder("fsm_case")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(
        state,
        {
            0: mux(go[0], Const(1, 2), Const(0, 2)),
            1: Const(2, 2),
            2: Const(0, 2),
        },
        Const(0, 2),
    )
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    b.output("done", state.eq(2))
    return b.build()


def compile_case_fsm():
    return DesignCompiler().compile(
        build_case_fsm(), CompileOptions(clock_period_ns=5.0)
    )


def test_every_log_line_matches_a_pinned_legacy_format():
    result = compile_case_fsm()
    assert result.log  # non-empty
    for line in result.log:
        assert any(
            re.fullmatch(fmt, line) for fmt in LEGACY_LINE_FORMATS
        ), f"log line {line!r} broke the legacy format"


def test_log_is_rendered_from_the_records():
    result = compile_case_fsm()
    assert result.log == render_log(result.records)
    assert result.log == [
        message for record in result.records for message in record.messages
    ]


def test_log_preserves_the_legacy_stage_order():
    result = compile_case_fsm()
    prefixes = []
    for line in result.log:
        prefix = line.split(":")[0].split("[")[0]
        if not prefixes or prefixes[-1] != prefix:
            prefixes.append(prefix)
    # The case FSM exercises infer -> encode -> elaborate -> optimize
    # -> stateprop -> optimize -> map -> size, in that order.
    assert prefixes == [
        "fsm_infer", "encode", "elaborate", "optimize",
        "stateprop", "optimize", "map", "size",
    ]


def test_records_carry_wall_time_and_aig_stats():
    result = compile_case_fsm()
    names = [record.name for record in result.records]
    for expected in ("fsm_infer", "elaborate", "seq_sweep", "tt_sweep",
                     "balance", "rewrite", "map", "size"):
        assert expected in names, f"no record for pass {expected}"
    for record in result.records:
        assert record.wall_time_s >= 0.0
    elaborate = next(r for r in result.records if r.name == "elaborate")
    assert elaborate.before is None  # no AIG yet
    assert elaborate.after is not None and elaborate.after.num_ands > 0
    rewrite = next(r for r in result.records if r.name == "rewrite")
    assert rewrite.before is not None and rewrite.after is not None
    assert rewrite.delta_ands is not None


def test_dropped_bus_message_keeps_legacy_format():
    # Annotating a register whose bus dissolves during optimization
    # (the constant-driven reg below) exercises the dropped-bus line.
    b = ModuleBuilder("dropbus")
    data = b.input("data", 2)
    dead = b.reg("dead", 2)
    b.drive(dead, Const(0, 2))
    live = b.reg("live", 2)
    b.drive(live, data)
    b.output("o", live.ne(0))
    result = DesignCompiler().compile(
        b.build(),
        CompileOptions(
            fsm_encoding="same",
            infer_fsm=False,
            state_annotations=[StateAnnotation("dead", (0, 1))],
        ),
    )
    dropped = [l for l in result.log if "no longer exists" in l]
    if dropped:  # the sweep removed the constant register first
        assert dropped == ["stateprop: bus dead no longer exists (dropped)"]
