"""The frontend (``ctrl``) stage: controller IRs, lowering passes,
stage checking, and IR-keyed caching."""

import pytest

from repro.controllers import (
    DispatchTable,
    FsmSpec,
    MicrocodeFormat,
    Program,
    SeqOp,
    SequencerSpec,
)
from repro.controllers.fsm_rtl import (
    fsm_to_case_rtl,
    fsm_to_table_rtl,
    table_rows,
)
from repro.flow import (
    CompileCache,
    CompileJob,
    CtrlStats,
    FlowContext,
    FlowError,
    PassManager,
    compile_many,
    flow_fingerprint,
    is_controller_ir,
)
from repro.flow.core import PassRecord
from repro.tables.rtl import table_to_rom_rtl, table_to_sop_rtl
from repro.tables.truthtable import TruthTable


def demo_fsm(name="demo", s=3):
    next_state = [[(i + 1) % s, (i + 2) % s] for i in range(s)]
    output = [[i % 4, (i + 1) % 4] for i in range(s)]
    return FsmSpec(name, 1, 2, s, 0, next_state, output)


def demo_table(seed=3):
    import random

    return TruthTable.random(3, 2, random.Random(seed))


def demo_program():
    fmt = MicrocodeFormat.horizontal(("cmd", ["read", "write"]))
    dispatch = DispatchTable("dsp", opcode_bits=1, default="idle")
    dispatch.set(1, "work")
    program = Program(fmt, conditions=["busy"], dispatch=dispatch)
    program.label("idle")
    program.inst(seq=SeqOp.DISPATCH)
    program.label("work")
    program.inst(cmd="read")
    program.inst(cmd="write", seq=SeqOp.JUMP, target="idle")
    return program


# ---------------------------------------------------------------------
# The ControllerIR protocol.
# ---------------------------------------------------------------------

def test_every_ir_class_implements_the_protocol():
    program = demo_program()
    assembled = program.assemble(addr_bits=2)
    sequencer = SequencerSpec(
        "useq", format=program.format, addr_bits=2, opcode_bits=1
    )
    irs = [
        demo_fsm(),
        demo_table(),
        program,
        assembled,
        program.dispatch,
        sequencer,
    ]
    kinds = set()
    for ir in irs:
        assert is_controller_ir(ir)
        assert len(ir.ir_hash()) == 64  # hex sha-256
        stats = CtrlStats.of(ir)
        assert stats.items > 0 and stats.bits > 0
        kinds.add(stats.kind)
    assert kinds == {
        "fsm", "table", "program", "microcode", "dispatch", "sequencer"
    }


def test_ir_hashes_are_content_addressed():
    assert demo_fsm().ir_hash() == demo_fsm().ir_hash()
    assert demo_fsm(s=3).ir_hash() != demo_fsm(s=4).ir_hash()
    assert demo_fsm("a").ir_hash() != demo_fsm("b").ir_hash()
    assert demo_table(1).ir_hash() != demo_table(2).ir_hash()
    one = demo_program()
    two = demo_program()
    assert one.ir_hash() == two.ir_hash()
    two.inst(cmd="read")
    assert one.ir_hash() != two.ir_hash()
    assert (
        one.assemble(addr_bits=2).ir_hash()
        == demo_program().assemble(addr_bits=2).ir_hash()
    )
    assert (
        one.assemble(addr_bits=2).ir_hash()
        != one.assemble(addr_bits=3).ir_hash()
    )


def test_non_ir_ctrl_input_cannot_be_fingerprinted():
    with pytest.raises(FlowError, match="ir_hash"):
        flow_fingerprint("fsm_encode", ctrl=object())


# ---------------------------------------------------------------------
# Lowering passes reproduce the direct builders exactly.
# ---------------------------------------------------------------------

def test_fsm_encode_lowers_to_the_exact_builder_output():
    spec = demo_fsm()
    case_ctx = PassManager.parse("fsm_encode{realize=case}").compile(ctrl=spec)
    assert (
        case_ctx.module.canonical_hash()
        == fsm_to_case_rtl(spec).canonical_hash()
    )
    table_ctx = PassManager.parse("fsm_encode").compile(ctrl=spec)
    assert (
        table_ctx.module.canonical_hash()
        == fsm_to_table_rtl(spec).canonical_hash()
    )
    flex_ctx = PassManager.parse("fsm_encode{flexible=true}").compile(ctrl=spec)
    assert (
        flex_ctx.module.canonical_hash()
        == fsm_to_table_rtl(spec, flexible=True).canonical_hash()
    )
    # The IR stays on the context for provenance.
    assert table_ctx.ctrl is spec


def test_table_lowerings_match_the_direct_builders():
    table = demo_table()
    rom_ctx = PassManager.parse("table_rom").compile(ctrl=table)
    assert (
        rom_ctx.module.canonical_hash()
        == table_to_rom_rtl(table, "table").canonical_hash()
    )
    sop_ctx = PassManager.parse("table_minimize").compile(ctrl=table)
    assert (
        sop_ctx.module.canonical_hash()
        == table_to_sop_rtl(table, "sop").canonical_hash()
    )
    named = PassManager.parse("table_rom{name=tbl_x}").compile(ctrl=table)
    assert named.module.name == "tbl_x"


def test_fsm_encoding_styles_are_spec_ablations():
    """onehot vs gray state encodings differ by one spec token and
    both run end-to-end from IR to sized netlist."""
    spec = demo_fsm(s=5)
    body = "elaborate,optimize,state_folding,map,size"
    results = {}
    for style in ("onehot", "gray"):
        ctx = PassManager.parse(
            f"fsm_encode{{style={style}}},{body}"
        ).compile(ctrl=spec)
        [annotation] = [
            a for a in ctx.annotations if a.reg_name == "state"
        ]
        assert len(annotation.values) == 5
        assert ctx.area.total > 0
        results[style] = ctx
    onehot = results["onehot"].module
    # One-hot re-encoding widens the state register to one bit/state.
    assert onehot.regs["state"].width == 5
    assert results["gray"].module.regs["state"].width == 3


def test_sop_engines_parse_and_synthesize():
    table = demo_table()
    areas = {}
    for engine in ("isop", "qm", "espresso"):
        ctx = PassManager.parse(
            f"table_minimize{{engine={engine}}},elaborate,optimize,map,size"
        ).compile(ctrl=table)
        areas[engine] = ctx.area.total
        assert ctx.area.total > 0
    with pytest.raises(FlowError, match="rejected options"):
        PassManager.parse("table_minimize{engine=bogus}")


def test_microcode_pack_then_dispatch_rom_reaches_netlist():
    program = demo_program()
    ctx = PassManager.parse(
        "microcode_pack{addr_bits=2},dispatch_rom,elaborate,optimize,"
        "state_folding,map,size"
    ).compile(ctrl=program)
    # The IR advanced from symbolic program to assembled image.
    assert ctx.ctrl.ir_stats()["kind"] == "microcode"
    # The generator-side uPC annotation was asserted in-flow.
    assert any(a.reg_name == "upc" for a in ctx.annotations)
    assert ctx.area.total > 0
    packed = [r for r in ctx.records if r.name == "microcode_pack"]
    assert packed[0].ctrl_before.kind == "program"
    assert packed[0].ctrl_after.kind == "microcode"


def test_pe_bind_matches_the_prebound_route():
    spec = demo_fsm()
    flexible = fsm_to_table_rtl(spec, flexible=True)
    bindings = {
        "next_mem": table_rows(spec, "next"),
        "out_mem": table_rows(spec, "output"),
    }
    body = "fsm_infer,honour_annotations,elaborate,optimize,map,size"
    bound_in_flow = PassManager.parse(f"pe_bind,{body}").compile(
        flexible, bindings=bindings
    )
    from repro.pe.bind import bind_tables

    prebound = PassManager.parse(body).compile(bind_tables(flexible, bindings))
    assert bound_in_flow.area.total == prebound.area.total
    assert bound_in_flow.module.canonical_hash() == (
        prebound.module.canonical_hash()
    )


def test_pe_bind_without_bindings_is_an_error_naming_the_pass():
    spec = demo_fsm()
    with pytest.raises(FlowError, match="'pe_bind'"):
        PassManager.parse("pe_bind").compile(fsm_to_table_rtl(spec, True))


# ---------------------------------------------------------------------
# Stage misuse: wrong-representation contexts raise, naming the pass.
# ---------------------------------------------------------------------

def test_ctrl_pass_on_aig_only_context_is_a_stage_error():
    from repro.synth.elaborate import elaborate

    aig = elaborate(fsm_to_case_rtl(demo_fsm())).aig
    with pytest.raises(FlowError, match="'fsm_encode'.*controller IR"):
        PassManager.parse("fsm_encode").compile(aig=aig)


def test_aig_pass_before_elaboration_is_a_stage_error():
    with pytest.raises(FlowError, match="'balance'.*elaborated AIG"):
        PassManager.parse("fsm_encode,balance").compile(ctrl=demo_fsm())


def test_ctrl_pass_after_lowering_is_a_stage_error():
    # Double lowering: the first fsm_encode sets the module, so the
    # second is no longer at the frontend stage.
    with pytest.raises(FlowError, match="'fsm_encode'"):
        PassManager.parse("fsm_encode,fsm_encode").compile(ctrl=demo_fsm())


def test_wrong_ir_type_is_an_error_naming_the_pass():
    with pytest.raises(FlowError, match="'table_rom'.*TruthTable"):
        PassManager.parse("table_rom").compile(ctrl=demo_fsm())


# ---------------------------------------------------------------------
# IR-keyed caching: warm runs skip the lowering and the synthesis.
# ---------------------------------------------------------------------

def test_fingerprint_covers_ir_and_bindings():
    base = flow_fingerprint("fsm_encode,elaborate", ctrl=demo_fsm())
    assert base == flow_fingerprint("fsm_encode,elaborate", ctrl=demo_fsm())
    assert base != flow_fingerprint(
        "fsm_encode,elaborate", ctrl=demo_fsm(s=4)
    )
    assert base != flow_fingerprint(
        "fsm_encode{style=gray},elaborate", ctrl=demo_fsm()
    )
    spec = demo_fsm()
    flexible = fsm_to_table_rtl(spec, flexible=True)
    bindings = {"next_mem": table_rows(spec, "next")}
    with_bindings = flow_fingerprint(
        "pe_bind,elaborate", module=flexible, bindings=bindings
    )
    assert with_bindings != flow_fingerprint(
        "pe_bind,elaborate", module=flexible
    )
    assert with_bindings != flow_fingerprint(
        "pe_bind,elaborate",
        module=flexible,
        bindings={"next_mem": table_rows(spec, "output")},
    )


def test_warm_cache_performs_zero_lowerings_and_zero_compiles(monkeypatch):
    spec = demo_fsm()
    pipeline = "fsm_encode{realize=case},fsm_infer,honour_annotations," \
        "encode,elaborate,optimize,map,size"
    cache = CompileCache()
    cold = compile_many(
        [CompileJob("a", pipeline, ctrl=spec)], cache=cache
    )["a"]
    assert cache.misses == 1

    # A warm run must not lower or elaborate anything: poison both
    # engines and replay the sweep out of the cache.
    import repro.flow.frontend as frontend
    import repro.flow.passes as passes

    def boom(*args, **kwargs):
        raise AssertionError("warm run executed a lowering/compile")

    monkeypatch.setattr(frontend, "fsm_to_case_rtl", boom)
    monkeypatch.setattr(passes, "elaborate", boom)
    warm = compile_many(
        [CompileJob("a", pipeline, ctrl=spec)], cache=cache
    )["a"]
    assert warm is cold
    assert cache.misses == 1  # unchanged: everything was a hit


# ---------------------------------------------------------------------
# Instrumentation: frontend stats on records, JSON round-trip.
# ---------------------------------------------------------------------

def test_ctrl_records_carry_frontend_stats_and_round_trip():
    ctx = PassManager.parse("fsm_encode").compile(ctrl=demo_fsm())
    [record] = [r for r in ctx.records if r.name == "fsm_encode"]
    assert record.ctrl_before == CtrlStats(kind="fsm", items=3, bits=3)
    rebuilt = PassRecord.from_json(record.to_json())
    assert rebuilt == record
    # Pre-ctrl-stage records (no frontend keys) still load.
    legacy = dict(record.to_json())
    del legacy["ctrl_before"], legacy["ctrl_after"]
    assert PassRecord.from_json(legacy).ctrl_before is None


def test_downstream_records_stay_frontend_free():
    ctx = PassManager.parse("fsm_encode,elaborate,optimize").compile(
        ctrl=demo_fsm()
    )
    for record in ctx.records:
        if record.stage != "ctrl":
            assert record.ctrl_before is None and record.ctrl_after is None
