"""compile_many: determinism vs serial, cache sharing, failure context."""

import pytest

from repro.flow import (
    CompileCache,
    CompileJob,
    CompileJobError,
    FlowError,
    PassManager,
    compile_many,
)
from repro.flow.core import Pass
from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, mux
from repro.synth.dc_options import StateAnnotation


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


def sample_jobs():
    pipeline = PassManager.parse("elaborate,optimize,map,size")
    return [
        CompileJob(scale, pipeline, module=build_rom_module(scale), seed=7)
        for scale in (3, 5, 7, 11)
    ]


def record_signature(ctx):
    """Everything deterministic about a record stream (wall times are
    the one legitimately run-dependent field)."""
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


def test_parallel_results_identical_to_serial():
    serial = compile_many(sample_jobs(), workers=1)
    parallel = compile_many(sample_jobs(), workers=2)
    assert list(serial) == list(parallel)  # key order = submission order
    for key in serial:
        assert serial[key].area.total == parallel[key].area.total
        assert (
            serial[key].timing.critical_delay
            == parallel[key].timing.critical_delay
        )
        assert record_signature(serial[key]) == record_signature(
            parallel[key]
        )


def test_string_pipelines_parse_in_the_worker():
    results = compile_many(
        [
            CompileJob(
                "spec", "elaborate,optimize,map,size",
                module=build_rom_module(),
            )
        ],
        workers=2,
    )
    assert results["spec"].area.total > 0


def test_annotations_and_seed_travel_with_the_job():
    # A 3-state case FSM annotated with its reachable set {0, 1, 2}.
    b = ModuleBuilder("fsm")
    go = b.input("go")
    state = b.reg("state", 2)
    nxt = b.case(
        state,
        {
            0: mux(go[0], Const(1, 2), Const(0, 2)),
            1: Const(2, 2),
            2: Const(0, 2),
        },
        Const(0, 2),
    )
    b.drive(state, nxt)
    b.output("busy", state.ne(0))
    module = b.build()
    spec = "honour_annotations,elaborate,optimize,state_folding,map,size"
    annotated = CompileJob(
        "annotated", spec,
        module=module,
        annotations=(StateAnnotation("state", (0, 1, 2)),),
        seed=13,
    )
    plain = CompileJob("plain", spec, module=module, seed=13)
    serial = compile_many([annotated, plain], workers=1)
    parallel = compile_many([annotated, plain], workers=2)
    assert (
        parallel["annotated"].area.total == serial["annotated"].area.total
    )
    assert parallel["plain"].area.total == serial["plain"].area.total


def test_duplicate_keys_rejected():
    pipeline = PassManager.parse("elaborate")
    jobs = [
        CompileJob("same", pipeline, module=build_rom_module()),
        CompileJob("same", pipeline, module=build_rom_module(5)),
    ]
    with pytest.raises(FlowError, match="duplicate compile job key"):
        compile_many(jobs)


def test_disk_cache_shared_across_workers(tmp_path):
    cache = CompileCache(tmp_path / "cache")
    first = compile_many(sample_jobs(), workers=2, cache=cache)
    assert cache.misses == len(first) and cache.stores == 0
    # Worker processes published to the shared disk store...
    assert len(list((tmp_path / "cache").glob("*/*.pkl"))) == len(first)
    # ...and the parent absorbed the results into its memory layer.
    warm = compile_many(sample_jobs(), workers=2, cache=cache)
    assert cache.memory_hits == len(first)
    for key in first:
        assert warm[key].area.total == first[key].area.total
    # A fresh process-equivalent (new cache object) hits the disk.
    cold = CompileCache(tmp_path / "cache")
    again = compile_many(sample_jobs(), workers=2, cache=cold)
    assert cold.disk_hits == len(first) and cold.misses == 0
    for key in first:
        assert again[key].area.total == first[key].area.total


def test_memory_only_cache_still_absorbs_parallel_results():
    cache = CompileCache()
    compile_many(sample_jobs(), workers=2, cache=cache)
    compile_many(sample_jobs(), workers=2, cache=cache)
    assert cache.memory_hits == 4


class ExplodingPass(Pass):
    name = "explode"
    stage = "aig"

    def run(self, ctx):
        self.note("explode: about to fail")
        raise RuntimeError("boom")


def test_serial_failure_carries_log_context():
    bad = PassManager(
        PassManager.parse("elaborate").passes + [ExplodingPass()]
    )
    with pytest.raises(CompileJobError) as err:
        compile_many(
            [CompileJob("broken", bad, module=build_rom_module())],
            workers=1,
        )
    assert err.value.key == "broken"
    assert "boom" in err.value.error
    # The failing pass's notes survived (the Pass.execute finally fix).
    assert any("about to fail" in m for r in err.value.records
               for m in r.messages)
    assert err.value.records[-1].failed


def test_parallel_failure_is_deterministic_and_keeps_context():
    bad = PassManager(
        PassManager.parse("elaborate").passes + [ExplodingPass()]
    )
    good = PassManager.parse("elaborate,optimize,map,size")
    jobs = [
        CompileJob("a", good, module=build_rom_module(3)),
        CompileJob("first-broken", bad, module=build_rom_module(5)),
        CompileJob("second-broken", bad, module=build_rom_module(7)),
    ]
    with pytest.raises(CompileJobError) as err:
        compile_many(jobs, workers=2)
    # The earliest failing job in submission order wins, as serially.
    assert err.value.key == "first-broken"
    assert any("about to fail" in m for r in err.value.records
               for m in r.messages)


def test_failed_pass_does_not_leak_notes_into_next_run():
    exploding = ExplodingPass()
    from repro.flow import FlowContext
    from repro.synth.elaborate import elaborate

    ctx = FlowContext(aig=elaborate(build_rom_module()).aig)
    with pytest.raises(RuntimeError):
        exploding.execute(ctx)
    [record] = ctx.records
    assert record.failed and record.messages == ("explode: about to fail",)

    class Quiet(ExplodingPass):
        def run(self, ctx):  # no note, no failure
            pass

    quiet = Quiet()
    quiet._notes = exploding._notes  # simulate shared state; must be empty
    second = quiet.execute(ctx)
    assert second.messages == ()
