"""Stage snapshots: prefix fingerprints, resume, version skew, GC."""

import pickle

import pytest

from repro.flow import (
    CompileCache,
    PassManager,
    SnapshotPolicy,
    StageSnapshot,
    fingerprint_prefixes,
    flow_fingerprint,
    resolve_snapshot_policy,
    snapshot_key,
)
from repro.flow.cache import SNAPSHOT_VERSION, _dumps
from repro.flow.core import FlowContext
from repro.rtl.builder import ModuleBuilder


def build_rom_module(scale=3, name="m"):
    b = ModuleBuilder(name)
    addr = b.input("addr", 4)
    rom = b.rom("t", 8, 16, [(scale * i + 1) % 256 for i in range(16)])
    b.output("data", rom.read(addr))
    return b.build()


FULL_SPEC = "elaborate,optimize,resub,dc_rewrite,map,size"


def record_signature(ctx):
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


# ---------------------------------------------------------------------
# Prefix fingerprints.
# ---------------------------------------------------------------------

def test_prefix_fingerprints_equal_standalone_fingerprints():
    """Element k of the fold is byte-identical to flow_fingerprint of
    the k-pass pipeline -- the identity cross-recipe sharing rests on."""
    pipeline = PassManager.parse(FULL_SPEC)
    module = build_rom_module()
    fps = pipeline.prefix_fingerprints(module=module, seed=7)
    assert len(fps) == len(pipeline.passes)
    for spec, fp in zip(pipeline.prefix_specs(), fps):
        assert fp == flow_fingerprint(spec, module=module, seed=7)


def test_prefix_fingerprints_diverge_only_from_the_edit_point():
    module = build_rom_module()
    longer = PassManager.parse(FULL_SPEC).prefix_fingerprints(module=module)
    shorter = PassManager.parse("elaborate,optimize,map,size").\
        prefix_fingerprints(module=module)
    assert longer[:2] == shorter[:2]  # shared elaborate,optimize prefix
    assert longer[2] != shorter[2]


def test_short_pipeline_full_fingerprint_is_longer_ones_prefix():
    module = build_rom_module()
    short = PassManager.parse("elaborate,optimize")
    longer = PassManager.parse("elaborate,optimize,resub")
    assert (
        short.prefix_fingerprints(module=module)[-1]
        == longer.prefix_fingerprints(module=module)[1]
    )


def test_snapshot_key_is_derived_and_distinct():
    fp = flow_fingerprint("elaborate", module=build_rom_module())
    key = snapshot_key(fp)
    assert key != fp
    assert len(key) == 64 and int(key, 16) >= 0  # a well-formed digest
    assert snapshot_key(fp) == key  # deterministic


# ---------------------------------------------------------------------
# Snapshot policy resolution.
# ---------------------------------------------------------------------

def test_policy_resolution_and_env(monkeypatch):
    assert resolve_snapshot_policy(None).enabled
    assert resolve_snapshot_policy(True).enabled
    assert not resolve_snapshot_policy(False).enabled
    pinned = SnapshotPolicy(min_pass_seconds=1.5)
    assert resolve_snapshot_policy(pinned) is pinned

    monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
    assert not resolve_snapshot_policy(None).enabled
    monkeypatch.setenv("REPRO_SNAPSHOTS", "off")
    assert not resolve_snapshot_policy(None).enabled
    # An explicit policy beats the environment.
    assert resolve_snapshot_policy(True).enabled

    monkeypatch.delenv("REPRO_SNAPSHOTS")
    monkeypatch.setenv("REPRO_SNAPSHOT_MIN_S", "2.5")
    assert resolve_snapshot_policy(None).min_pass_seconds == 2.5
    monkeypatch.setenv("REPRO_SNAPSHOT_MIN_S", "not-a-float")
    assert (
        resolve_snapshot_policy(None).min_pass_seconds
        == SnapshotPolicy().min_pass_seconds
    )


def test_should_snapshot_rules():
    policy = SnapshotPolicy(min_pass_seconds=0.5)
    assert policy.should_snapshot(wall_time_s=0.0, stage_changed=True)
    assert policy.should_snapshot(wall_time_s=0.9, stage_changed=False)
    assert not policy.should_snapshot(wall_time_s=0.1, stage_changed=False)
    assert policy.should_snapshot(
        wall_time_s=0.0, stage_changed=False, forced=True
    )
    off = SnapshotPolicy(enabled=False)
    assert not off.should_snapshot(
        wall_time_s=9.0, stage_changed=True, forced=True
    )


# ---------------------------------------------------------------------
# Snapshot storage round trips.
# ---------------------------------------------------------------------

def test_snapshot_roundtrip_returns_fresh_objects(tmp_path):
    """Every get_snapshot must hand out an independent context --
    resume mutates the restored object, so sharing would corrupt the
    stored snapshot for the next consumer."""
    cache = CompileCache(tmp_path)
    pipeline = PassManager.parse("elaborate,optimize")
    module = build_rom_module()
    fp = pipeline.prefix_fingerprints(module=module)[0]

    ctx = FlowContext(module=module)
    pipeline.passes[0].execute(ctx)
    cache.put_snapshot(fp, ctx, prefix_spec="elaborate", passes_done=1)

    first = cache.get_snapshot(fp)
    second = cache.get_snapshot(fp)
    assert first is not None and second is not None
    assert first is not second and first is not ctx
    assert first.aig.canonical_hash() == ctx.aig.canonical_hash()
    # Mutating one restored copy must not leak into the next.
    first.meta["poisoned"] = True
    assert "poisoned" not in cache.get_snapshot(fp).meta
    assert cache.snapshot_hits == 3 and cache.snapshot_stores == 1


def test_snapshot_survives_process_boundary(tmp_path):
    """Disk-only restore: a second cache instance over the same
    directory (a fresh worker, in production) sees the snapshot."""
    pipeline = PassManager.parse("elaborate,optimize")
    module = build_rom_module()
    fp = pipeline.prefix_fingerprints(module=module)[0]
    ctx = FlowContext(module=module)
    pipeline.passes[0].execute(ctx)
    CompileCache(tmp_path).put_snapshot(fp, ctx, passes_done=1)

    restored = CompileCache(tmp_path).get_snapshot(fp)
    assert restored is not None
    assert restored.aig.canonical_hash() == ctx.aig.canonical_hash()


def test_resumed_compile_matches_from_scratch(tmp_path):
    """The correctness bar: seed the cache with a shorter pipeline's
    snapshots, compile the longer pipeline, get byte-identical
    results (hashes + records modulo wall time)."""
    module = build_rom_module()
    scratch = PassManager.parse(FULL_SPEC).compile(module=module)

    cache = CompileCache(tmp_path)
    # A prior compile of the shared prefix leaves its snapshots (and
    # its completed entry) behind...
    PassManager.parse("elaborate,optimize,resub").compile(
        module=module, cache=cache, snapshots=SnapshotPolicy(
            min_pass_seconds=0.0
        ),
    )
    # ...which the longer pipeline resumes past.
    resumed = PassManager.parse(FULL_SPEC).compile(
        module=module, cache=cache
    )
    assert resumed.meta.get("passes_skipped", 0) >= 1
    assert resumed.meta["resumed_at"] in ("optimize", "resub")
    assert resumed.aig.canonical_hash() == scratch.aig.canonical_hash()
    assert resumed.area.total == scratch.area.total
    assert record_signature(resumed) == record_signature(scratch)


def test_completed_entry_of_shorter_pipeline_serves_as_resume_point(
    tmp_path,
):
    """Cross-recipe sharing without snapshots: the short pipeline's
    *entry* (its full fingerprint == the longer one's prefix digest)
    is a valid resume point even when no snapshot was ever taken."""
    module = build_rom_module()
    cache = CompileCache(tmp_path)
    PassManager.parse("elaborate,optimize").compile(
        module=module, cache=cache, snapshots=False
    )
    resumed = PassManager.parse("elaborate,optimize,resub").compile(
        module=module, cache=cache
    )
    assert resumed.meta["passes_skipped"] == 2
    assert resumed.meta["resumed_at"] == "optimize"
    scratch = PassManager.parse("elaborate,optimize,resub").compile(
        module=module
    )
    assert record_signature(resumed) == record_signature(scratch)


def test_snapshots_disabled_writes_and_reads_nothing(tmp_path):
    cache = CompileCache(tmp_path)
    PassManager.parse(FULL_SPEC).compile(
        module=build_rom_module(), cache=cache, snapshots=False
    )
    assert cache.snapshot_stores == 0
    assert cache.stats()["backend"]["snapshots"] == 0


# ---------------------------------------------------------------------
# Version skew: old readers, new readers, foreign blobs.
# ---------------------------------------------------------------------

def _seeded(tmp_path):
    """A cache holding one completed entry and one snapshot."""
    cache = CompileCache(tmp_path)
    pipeline = PassManager.parse("elaborate,optimize")
    module = build_rom_module()
    fps = pipeline.prefix_fingerprints(module=module)
    ctx = FlowContext(module=module)
    pipeline.passes[0].execute(ctx)
    cache.put_snapshot(fps[0], ctx, prefix_spec="elaborate", passes_done=1)
    done = pipeline.compile(module=module, cache=cache, snapshots=False)
    return cache, fps, done


def test_future_snapshot_version_reads_as_miss(tmp_path):
    cache, fps, _ = _seeded(tmp_path)
    ctx = CompileCache(tmp_path).get_snapshot(fps[0])
    bad = StageSnapshot(
        version=SNAPSHOT_VERSION + 1,
        prefix_spec="elaborate",
        passes_done=1,
        ctx=ctx,
    )
    key = snapshot_key(fps[0])
    (tmp_path / "snap" / key[:2] / f"{key}.pkl").write_bytes(_dumps(bad))
    fresh = CompileCache(tmp_path)  # no memory copy: the disk blob rules
    assert fresh.get_snapshot(fps[0]) is None
    assert fresh.snapshot_misses == 1


def test_corrupt_snapshot_blob_reads_as_miss(tmp_path):
    cache, fps, _ = _seeded(tmp_path)
    key = snapshot_key(fps[0])
    path = tmp_path / "snap" / key[:2] / f"{key}.pkl"
    path.write_bytes(b"not a pickle")
    assert CompileCache(tmp_path).get_snapshot(fps[0]) is None


def test_snapshot_blob_under_entry_key_reads_as_entry_miss(tmp_path):
    """A snapshot envelope planted where an entry should be must not
    leak a StageSnapshot out of CompileCache.get."""
    cache, fps, done = _seeded(tmp_path)
    key = fps[-1]
    snapshot_blob = _dumps(
        StageSnapshot(
            version=SNAPSHOT_VERSION,
            prefix_spec="elaborate,optimize",
            passes_done=2,
            ctx=done,
        )
    )
    (tmp_path / key[:2] / f"{key}.pkl").write_bytes(snapshot_blob)
    assert CompileCache(tmp_path).get(key) is None


def test_snapshots_invisible_to_pre_snapshot_entry_listing(tmp_path):
    """Old readers listed entries with a two-level glob; snapshots
    live one directory deeper (snap/<aa>/<key>.pkl), so a pre-snapshot
    cache walking the same directory never sees them."""
    cache, fps, _ = _seeded(tmp_path)
    entry_files = list(tmp_path.glob("*/*.pkl"))  # the historical listing
    assert len(entry_files) == 1
    assert all("snap" not in f.parts for f in entry_files)
    snapshot_files = list((tmp_path / "snap").glob("*/*.pkl"))
    assert len(snapshot_files) == 1
    # Every stored snapshot blob is a StageSnapshot envelope, never a
    # bare context -- what an old unpickler would at least fail loudly
    # on rather than silently misuse.
    envelope = pickle.loads(snapshot_files[0].read_bytes())
    assert isinstance(envelope, StageSnapshot)
    assert envelope.version == SNAPSHOT_VERSION
    assert envelope.passes_done == 1


# ---------------------------------------------------------------------
# GC + stats account both kinds.
# ---------------------------------------------------------------------

def test_stats_report_entries_and_snapshots_by_kind(tmp_path):
    cache, fps, _ = _seeded(tmp_path)
    stats = cache.stats()
    assert stats["backend"]["entries"] == 1
    assert stats["backend"]["snapshots"] == 1
    assert stats["backend"]["snapshot_bytes"] > 0
    assert stats["snapshot_stores"] == 1


def test_sweep_covers_snapshots(tmp_path):
    cache, fps, _ = _seeded(tmp_path)
    swept = cache.sweep(max_bytes=0)
    assert swept.scanned_snapshots == 1
    assert swept.removed_snapshots == 1
    assert swept.removed == swept.scanned  # everything went
    stats = CompileCache(tmp_path).stats()
    assert stats["backend"]["entries"] == 0
    assert stats["backend"]["snapshots"] == 0
    # A swept snapshot is a miss, never an error.
    assert CompileCache(tmp_path).get_snapshot(fps[0]) is None


def test_age_sweep_keeps_fresh_snapshots(tmp_path):
    cache, fps, _ = _seeded(tmp_path)
    swept = cache.sweep(max_age_days=30)
    assert swept.removed == 0 and swept.removed_snapshots == 0
    assert CompileCache(tmp_path).get_snapshot(fps[0]) is not None
