"""Unit tests for the microprogram assembler and dispatch tables."""

import pytest

from repro.controllers.assembler import Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.microcode import MicrocodeFormat, SeqOp


def make_format():
    return MicrocodeFormat.horizontal(
        ("cmd", ["read", "write"]),
        ("unit", ["p0", "p1"]),
    )


def simple_program():
    fmt = make_format()
    prog = Program(fmt, conditions=["ready", "last"])
    prog.label("idle")
    prog.inst(seq=SeqOp.BRANCH, target="go", condition="ready")
    prog.inst(seq=SeqOp.JUMP, target="idle")
    prog.label("go")
    prog.inst(cmd="read", unit="p0")
    prog.inst(cmd="write", unit="p1", seq=SeqOp.JUMP, target="idle")
    return prog


def test_assemble_resolves_labels():
    image = simple_program().assemble()
    assert image.labels == {"idle": 0, "go": 2}
    assert image.length == 4
    assert image.addr_bits == 2
    # Branch at address 0 targets 'go' = 2 with condition 0 ('ready').
    assert image.seq_words[0] == (int(SeqOp.BRANCH), 0, 2)
    assert image.seq_words[3] == (int(SeqOp.JUMP), 0, 0)


def test_instruction_words_layout():
    image = simple_program().assemble(addr_bits=3, cond_bits=2)
    fmt_width = image.format.width
    words = image.instruction_words()
    # Word 2: cmd=read (1), unit=p0 (1), NEXT.
    control = words[2] & ((1 << fmt_width) - 1)
    assert image.format.unpack(control) == {"cmd": 1, "unit": 1}
    seq_op = (words[2] >> fmt_width) & 0b11
    assert seq_op == int(SeqOp.NEXT)
    assert image.word_width == fmt_width + 2 + 2 + 3


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        Program(make_format()).assemble()


def test_undefined_label_rejected():
    prog = Program(make_format())
    prog.inst(seq=SeqOp.JUMP, target="nowhere")
    with pytest.raises(KeyError):
        prog.assemble()


def test_duplicate_label_rejected():
    prog = Program(make_format())
    prog.label("a")
    with pytest.raises(ValueError):
        prog.label("a")


def test_target_rules():
    prog = Program(make_format())
    with pytest.raises(ValueError):
        prog.inst(seq=SeqOp.JUMP)  # missing target
    with pytest.raises(ValueError):
        prog.inst(seq=SeqOp.NEXT, target=3)  # spurious target


def test_program_too_long_for_address_space():
    prog = Program(make_format())
    for _ in range(5):
        prog.inst()
    with pytest.raises(ValueError):
        prog.assemble(addr_bits=2)


def test_unknown_condition_rejected():
    prog = Program(make_format(), conditions=["ready"])
    prog.inst(seq=SeqOp.BRANCH, target=0, condition="bogus")
    with pytest.raises(KeyError):
        prog.assemble()


def test_reachability_follows_control_flow():
    fmt = make_format()
    prog = Program(fmt)
    prog.label("start")
    prog.inst()  # 0 -> 1
    prog.inst(seq=SeqOp.JUMP, target="end")  # 1 -> 3
    prog.inst(cmd="read")  # 2: dead code
    prog.label("end")
    prog.inst(seq=SeqOp.JUMP, target="start")  # 3 -> 0
    image = prog.assemble()
    assert image.reachable_addresses() == (0, 1, 3)


def test_reachability_through_dispatch_and_pinning():
    fmt = make_format()
    table = DispatchTable("disp", opcode_bits=2, default="idle")
    table.set(1, "fast")
    table.set(2, "slow")
    prog = Program(fmt)
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)  # 0
    prog.label("fast")
    prog.inst(seq=SeqOp.JUMP, target="idle")  # 1
    prog.label("slow")
    prog.inst(cmd="read")  # 2
    prog.inst(seq=SeqOp.JUMP, target="idle")  # 3
    image = prog.assemble(dispatch=table)
    # All opcodes allowed: everything reachable.
    assert image.reachable_addresses() == (0, 1, 2, 3)
    # Pinned to opcode 1 only: the slow path is unreachable.
    assert image.reachable_addresses(opcodes=[0, 1]) == (0, 1)


def test_dispatch_validation():
    with pytest.raises(ValueError):
        DispatchTable("d", 1, entries={5: "x"})
    table = DispatchTable("d", 1)
    with pytest.raises(ValueError):
        table.set(2, "x")
    table.set(0, "missing")
    with pytest.raises(KeyError):
        table.resolve({})
    table2 = DispatchTable("d2", 1, default="nope")
    with pytest.raises(KeyError):
        table2.resolve({})


def test_dispatch_rows_without_table_raises():
    image = simple_program().assemble()
    with pytest.raises(ValueError):
        image.dispatch_rows()


def test_listing_mentions_labels_and_ops():
    image = simple_program().assemble()
    listing = image.listing()
    assert "idle:" in listing
    assert "go:" in listing
    assert "BRANCH" in listing
    assert "cmd=read" in listing
