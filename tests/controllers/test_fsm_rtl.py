"""Unit tests for the two FSM RTL styles, validated against the spec."""

import random

import pytest

from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import (
    fsm_to_case_rtl,
    fsm_to_table_rtl,
    program_flexible_fsm,
    table_rows,
)
from repro.sim.rtlsim import Simulator


def check_rtl_matches_spec(module, spec, cycles=120, seed=0, sim=None):
    rng = random.Random(seed)
    simulator = sim or Simulator(module)
    state = spec.reset_state
    for cycle in range(cycles):
        word = rng.getrandbits(spec.num_inputs)
        outputs = simulator.step({"in": word})
        expected_state, expected_out = spec.step(state, word)
        assert outputs["out"] == expected_out, f"cycle {cycle}"
        state = expected_state


@pytest.mark.parametrize("m,n,s", [(2, 2, 2), (2, 3, 3), (3, 4, 5), (2, 8, 17)])
def test_case_style_matches_spec(m, n, s):
    spec = random_fsm(m, n, s, random.Random(s * 100 + m))
    module = fsm_to_case_rtl(spec)
    check_rtl_matches_spec(module, spec, seed=s)


@pytest.mark.parametrize("m,n,s", [(2, 2, 2), (2, 3, 3), (3, 4, 5), (2, 8, 17)])
def test_table_style_matches_spec(m, n, s):
    spec = random_fsm(m, n, s, random.Random(s * 200 + m))
    module = fsm_to_table_rtl(spec)
    check_rtl_matches_spec(module, spec, seed=s)


def test_table_rows_layout():
    spec = random_fsm(2, 2, 3, random.Random(1))
    rows = table_rows(spec, "next")
    combos = 4
    # State code in the high address bits.
    for code in range(4):
        for word in range(combos):
            expected = spec.next_state[code][word] if code < 3 else 0
            assert rows[code * combos + word] == expected
    with pytest.raises(ValueError):
        table_rows(spec, "bogus")


def test_flexible_fsm_after_programming_matches_spec():
    spec = random_fsm(2, 3, 4, random.Random(9))
    module = fsm_to_table_rtl(spec, flexible=True)
    simulator = Simulator(module)
    program_flexible_fsm(simulator, spec)
    # Keep write enables low while running.
    rng = random.Random(4)
    state = spec.reset_state
    for _ in range(80):
        word = rng.getrandbits(spec.num_inputs)
        outputs = simulator.step(
            {"in": word, "next_mem_we": 0, "out_mem_we": 0}
        )
        state, expected_out = spec.step(state, word)
        assert outputs["out"] == expected_out


def test_flexible_uses_config_memories():
    spec = random_fsm(2, 2, 3, random.Random(3))
    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = fsm_to_table_rtl(spec, flexible=False)
    assert flexible.memories["next_mem"].writable
    assert not bound.memories["next_mem"].writable
    assert "next_mem_we" in flexible.inputs
    assert "next_mem_we" not in bound.inputs


def test_case_style_is_inference_friendly():
    spec = random_fsm(2, 2, 3, random.Random(5))
    case_module = fsm_to_case_rtl(spec)
    table_module = fsm_to_table_rtl(spec)
    assert "state" in case_module.case_registers()
    assert table_module.case_registers() == {}


def test_both_styles_agree_with_each_other():
    spec = random_fsm(3, 3, 6, random.Random(11))
    case_sim = Simulator(fsm_to_case_rtl(spec))
    table_sim = Simulator(fsm_to_table_rtl(spec))
    rng = random.Random(8)
    for _ in range(100):
        word = rng.getrandbits(3)
        assert case_sim.step({"in": word}) == table_sim.step({"in": word})
