"""Unit tests for microinstruction formats and fields."""

import pytest

from repro.controllers.microcode import Field, MicrocodeFormat, SeqOp


def test_seqop_values_are_stable():
    # The hardware encodes these in 2 bits; the values are part of the ABI.
    assert int(SeqOp.NEXT) == 0
    assert int(SeqOp.JUMP) == 1
    assert int(SeqOp.BRANCH) == 2
    assert int(SeqOp.DISPATCH) == 3


def test_field_encode_symbol_int_none():
    field = Field("cmd", 2, {"read": 1, "write": 2})
    assert field.encode("read") == 1
    assert field.encode(3) == 3
    assert field.encode(None) == 0
    with pytest.raises(KeyError):
        field.encode("erase")
    with pytest.raises(ValueError):
        field.encode(4)


def test_field_validation():
    with pytest.raises(ValueError):
        Field("bad", 0)
    with pytest.raises(ValueError):
        Field("bad", 1, {"big": 2})


def test_field_decode():
    field = Field("cmd", 2, {"read": 1, "write": 2})
    assert field.decode(1) == "read"
    assert field.decode(3) == 3


def test_horizontal_format_is_onehot():
    fmt = MicrocodeFormat.horizontal(
        ("cmd", ["read", "write", "sync"]),
        ("unit", ["p0", "p1"]),
    )
    assert fmt.width == 5
    cmd = fmt.field("cmd")
    assert cmd.onehot
    assert cmd.values == {"read": 1, "write": 2, "sync": 4}


def test_vertical_format_is_binary():
    fmt = MicrocodeFormat.vertical(
        ("cmd", ["read", "write", "sync"]),
        ("unit", ["p0", "p1"]),
    )
    # 3 symbols + idle need 2 bits; 2 symbols + idle need 2 bits.
    assert fmt.field("cmd").width == 2
    assert fmt.field("unit").width == 2
    assert fmt.width == 4
    assert not fmt.field("cmd").onehot


def test_pack_unpack_roundtrip():
    fmt = MicrocodeFormat.horizontal(
        ("cmd", ["read", "write"]),
        ("unit", ["p0", "p1", "p2"]),
    )
    word = fmt.pack(cmd="write", unit="p2")
    assert fmt.unpack(word) == {"cmd": 2, "unit": 4}
    assert fmt.pack() == 0  # all idle


def test_pack_rejects_unknown_fields():
    fmt = MicrocodeFormat.horizontal(("cmd", ["read"]))
    with pytest.raises(KeyError):
        fmt.pack(cmd="read", bogus=1)


def test_format_offsets():
    fmt = MicrocodeFormat.horizontal(
        ("a", ["x", "y"]),
        ("b", ["z"]),
    )
    assert fmt.offset("a") == 0
    assert fmt.offset("b") == 2
    with pytest.raises(KeyError):
        fmt.offset("c")
    with pytest.raises(KeyError):
        fmt.field("c")


def test_duplicate_field_names_rejected():
    with pytest.raises(ValueError):
        MicrocodeFormat.horizontal(("a", ["x"]), ("a", ["y"]))


def test_describe_is_symbolic():
    fmt = MicrocodeFormat.horizontal(("cmd", ["read", "write"]))
    text = fmt.describe(fmt.pack(cmd="read"))
    assert "cmd=read" in text
