"""Unit tests for FSM specs and random generation."""

import random

import pytest

from repro.controllers.fsm import FsmSpec
from repro.controllers.fsm_random import random_fsm


def tiny_spec():
    return FsmSpec(
        "toggle",
        num_inputs=1,
        num_outputs=1,
        num_states=2,
        reset_state=0,
        next_state=[[0, 1], [1, 0]],
        output=[[0, 0], [1, 1]],
    )


def test_spec_validation_passes_for_wellformed():
    spec = tiny_spec()
    assert spec.state_bits == 1
    assert spec.table_address_bits == 2


def test_spec_validation_catches_errors():
    with pytest.raises(ValueError):
        FsmSpec("bad", 1, 1, 1, 0, [[0, 0]], [[0, 0]])  # one state
    with pytest.raises(ValueError):
        FsmSpec("bad", 1, 1, 2, 5, [[0, 0], [0, 0]], [[0, 0], [0, 0]])
    with pytest.raises(ValueError):
        FsmSpec("bad", 1, 1, 2, 0, [[0, 0]], [[0, 0], [0, 0]])  # short table
    with pytest.raises(ValueError):
        FsmSpec("bad", 1, 1, 2, 0, [[0, 7], [0, 0]], [[0, 0], [0, 0]])
    with pytest.raises(ValueError):
        FsmSpec("bad", 1, 1, 2, 0, [[0, 0], [0]], [[0, 0], [0, 0]])


def test_step_and_run():
    spec = tiny_spec()
    assert spec.step(0, 1) == (1, 0)
    assert spec.step(1, 0) == (1, 1)
    outputs = spec.run([1, 0, 1, 1])
    assert outputs == [0, 1, 1, 0]


def test_trace_reports_states():
    spec = tiny_spec()
    trace = spec.trace([1, 1, 1])
    assert [s for s, _ in trace] == [0, 1, 0]


def test_state_bits_for_odd_counts():
    spec = random_fsm(2, 2, 3, random.Random(0))
    assert spec.state_bits == 2
    spec17 = random_fsm(2, 2, 17, random.Random(0))
    assert spec17.state_bits == 5


def test_reachability_of_random_fsms():
    rng = random.Random(7)
    for s in (2, 3, 8, 16, 17):
        for m in (2, 8):
            spec = random_fsm(m, 4, s, rng)
            assert spec.reachable_states() == tuple(range(s))


def test_random_fsm_reproducible():
    a = random_fsm(3, 5, 6, random.Random(42))
    b = random_fsm(3, 5, 6, random.Random(42))
    assert a.next_state == b.next_state
    assert a.output == b.output


def test_random_fsm_needs_two_states():
    with pytest.raises(ValueError):
        random_fsm(2, 2, 1, random.Random(0))
