"""Unit tests for the microcode sequencer generator."""

import pytest

from repro.controllers.assembler import Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.controllers.sequencer import SequencerSpec, generate_sequencer
from repro.sim.rtlsim import Simulator


def make_format():
    return MicrocodeFormat.horizontal(
        ("cmd", ["read", "write"]),
        ("unit", ["p0", "p1"]),
    )


def transfer_program(fmt):
    """idle -> (on go) read p0, read p1, write p0, loop to idle."""
    prog = Program(fmt, conditions=["go", "stall"])
    prog.label("idle")
    prog.inst(seq=SeqOp.BRANCH, target="xfer", condition="go")
    prog.inst(seq=SeqOp.JUMP, target="idle")
    prog.label("xfer")
    prog.inst(cmd="read", unit="p0")
    prog.inst(cmd="read", unit="p1")
    prog.inst(cmd="write", unit="p0", seq=SeqOp.JUMP, target="idle")
    return prog.assemble(addr_bits=3)


def test_spec_validation():
    fmt = make_format()
    with pytest.raises(ValueError):
        SequencerSpec("s", fmt, addr_bits=0)
    with pytest.raises(ValueError):
        SequencerSpec("s", fmt, addr_bits=3, num_conditions=0)
    with pytest.raises(ValueError):
        SequencerSpec("s", fmt, addr_bits=3, cond_bits=1, num_conditions=3)


def test_bound_sequencer_needs_program():
    spec = SequencerSpec("s", make_format(), addr_bits=3)
    with pytest.raises(ValueError):
        generate_sequencer(spec)


def test_spec_program_agreement_checked():
    fmt = make_format()
    image = transfer_program(fmt)
    bad_spec = SequencerSpec("s", fmt, addr_bits=4)
    with pytest.raises(ValueError):
        generate_sequencer(bad_spec, image)


def test_bound_sequencer_executes_program():
    fmt = make_format()
    image = transfer_program(fmt)
    spec = SequencerSpec(
        "xfer_ctrl", fmt, addr_bits=3, num_conditions=2, expose_upc=True
    )
    gen = generate_sequencer(spec, image)
    sim = Simulator(gen.module)

    # Hold go low: sits in the idle loop, no commands.
    for _ in range(4):
        out = sim.step({"cond": 0})
        assert out["ctl_cmd"] == 0
        assert out["upc_out"] in (0, 1)

    # Raise go: branch to xfer and run the three transfer steps.
    out = sim.step({"cond": 0b01})  # go=1: branch taken this cycle
    cmds = []
    for _ in range(3):
        out = sim.step({"cond": 0})
        cmds.append((out["ctl_cmd"], out["ctl_unit"]))
    read = fmt.field("cmd").values["read"]
    write = fmt.field("cmd").values["write"]
    p0 = fmt.field("unit").values["p0"]
    p1 = fmt.field("unit").values["p1"]
    assert cmds == [(read, p0), (read, p1), (write, p0)]
    # Back to idle.
    assert sim.step({"cond": 0})["upc_out"] in (0, 1)


def test_upc_annotation_from_reachability():
    fmt = make_format()
    image = transfer_program(fmt)
    spec = SequencerSpec("s", fmt, addr_bits=3, num_conditions=2)
    gen = generate_sequencer(spec, image)
    assert gen.upc_annotation is not None
    assert gen.upc_annotation.reg_name == "upc"
    assert gen.upc_annotation.values == (0, 1, 2, 3, 4)


def test_dispatch_sequencer():
    fmt = make_format()
    table = DispatchTable("d", opcode_bits=2, default="idle")
    table.set(1, "rd")
    table.set(2, "wr")
    prog = Program(fmt)
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    prog.label("rd")
    prog.inst(cmd="read", seq=SeqOp.JUMP, target="idle")
    prog.label("wr")
    prog.inst(cmd="write", seq=SeqOp.JUMP, target="idle")
    image = prog.assemble(addr_bits=2, dispatch=table)

    spec = SequencerSpec("disp_ctrl", fmt, addr_bits=2, opcode_bits=2)
    gen = generate_sequencer(spec, image)
    sim = Simulator(gen.module)
    read = fmt.field("cmd").values["read"]
    write = fmt.field("cmd").values["write"]

    sim.step({"op": 1})  # dispatch consumes the opcode
    assert sim.step({"op": 0})["ctl_cmd"] == read
    sim.step({"op": 2})  # back at idle, dispatch to wr
    assert sim.step({"op": 0})["ctl_cmd"] == write
    # Unmapped opcode falls back to idle.
    sim.step({"op": 3})
    assert sim.step({"op": 0})["ctl_cmd"] == 0


def test_pinned_annotation_excludes_unused_paths():
    fmt = make_format()
    table = DispatchTable("d", opcode_bits=2, default="idle")
    table.set(1, "rd")
    table.set(2, "wr")
    prog = Program(fmt)
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    prog.label("rd")
    prog.inst(cmd="read", seq=SeqOp.JUMP, target="idle")
    prog.label("wr")
    prog.inst(cmd="write", seq=SeqOp.JUMP, target="idle")
    image = prog.assemble(addr_bits=2, dispatch=table)
    spec = SequencerSpec("s", fmt, addr_bits=2, opcode_bits=2)
    full = generate_sequencer(spec, image)
    pinned = generate_sequencer(spec, image, annotation_opcodes=[0, 1])
    assert full.upc_annotation.values == (0, 1, 2)
    assert pinned.upc_annotation.values == (0, 1)


def test_flexible_sequencer_programmable():
    fmt = make_format()
    image = transfer_program(fmt)
    spec = SequencerSpec(
        "flex", fmt, addr_bits=3, num_conditions=2, flexible=True,
        expose_upc=True,
    )
    gen = generate_sequencer(spec)
    assert gen.upc_annotation is None
    sim = Simulator(gen.module)
    # Program the microcode memory through the write port.
    for addr, word in enumerate(image.instruction_words()):
        sim.step({"ucode_we": 1, "ucode_waddr": addr, "ucode_wdata": word})
    sim.reset()
    # Same behaviour as the bound version.
    sim.step({"cond": 0b01})
    read = fmt.field("cmd").values["read"]
    assert sim.step({"cond": 0})["ctl_cmd"] == read
