"""Unit tests for word-level AIG helpers."""

import random

import pytest

from repro.aig import ops
from repro.aig.graph import AIG, CONST0, CONST1

from tests.helpers import eval_lits, make_word, pi_assign


def test_const_word_and_value():
    word = ops.const_word(0b1011, 4)
    assert word == [CONST1, CONST1, CONST0, CONST1]
    assert ops.word_value(word) == 0b1011


def test_word_value_of_symbolic_is_none():
    aig = AIG()
    a = aig.add_pi("a")
    assert ops.word_value([CONST1, a]) is None


def test_bitwise_ops_random():
    rng = random.Random(3)
    aig = AIG()
    a = make_word(aig, "a", 6)
    b = make_word(aig, "b", 6)
    and_w = ops.and_word(aig, a, b)
    or_w = ops.or_word(aig, a, b)
    xor_w = ops.xor_word(aig, a, b)
    not_w = ops.not_word(a)
    for _ in range(16):
        va = rng.getrandbits(6)
        vb = rng.getrandbits(6)
        pis = pi_assign(a, va) | pi_assign(b, vb)
        assert eval_lits(aig, and_w, pis) == (va & vb)
        assert eval_lits(aig, or_w, pis) == (va | vb)
        assert eval_lits(aig, xor_w, pis) == (va ^ vb)
        assert eval_lits(aig, not_w, pis) == (~va) & 0x3F


def test_width_mismatch_raises():
    aig = AIG()
    a = make_word(aig, "a", 2)
    b = make_word(aig, "b", 3)
    with pytest.raises(ValueError):
        ops.and_word(aig, a, b)


def test_reductions():
    aig = AIG()
    a = make_word(aig, "a", 5)
    all_and = ops.reduce_and(aig, a)
    any_or = ops.reduce_or(aig, a)
    assert ops.reduce_and(aig, []) == CONST1
    assert ops.reduce_or(aig, []) == CONST0
    for value in (0, 0b11111, 0b10101):
        pis = pi_assign(a, value)
        assert eval_lits(aig, [all_and], pis) == (1 if value == 0b11111 else 0)
        assert eval_lits(aig, [any_or], pis) == (1 if value else 0)


def test_eq_const_and_eq_word():
    aig = AIG()
    a = make_word(aig, "a", 4)
    b = make_word(aig, "b", 4)
    eq9 = ops.eq_const(aig, a, 9)
    eq_ab = ops.eq_word(aig, a, b)
    for va in (0, 9, 15):
        for vb in (0, 9, 13):
            pis = pi_assign(a, va) | pi_assign(b, vb)
            assert eval_lits(aig, [eq9], pis) == (1 if va == 9 else 0)
            assert eval_lits(aig, [eq_ab], pis) == (1 if va == vb else 0)


def test_add_and_increment():
    rng = random.Random(9)
    aig = AIG()
    a = make_word(aig, "a", 5)
    b = make_word(aig, "b", 5)
    total = ops.add_words(aig, a, b)
    plus3 = ops.increment(aig, a, 3)
    for _ in range(20):
        va = rng.getrandbits(5)
        vb = rng.getrandbits(5)
        pis = pi_assign(a, va) | pi_assign(b, vb)
        assert eval_lits(aig, total, pis) == (va + vb) & 0x1F
        assert eval_lits(aig, plus3, pis) == (va + 3) & 0x1F


def test_onehot_decode():
    aig = AIG()
    a = make_word(aig, "a", 3)
    hot = ops.onehot_decode(aig, a)
    assert len(hot) == 8
    for value in range(8):
        assert eval_lits(aig, hot, pi_assign(a, value)) == 1 << value
    with pytest.raises(ValueError):
        ops.onehot_decode(aig, a, num_outputs=9)


def test_table_read_constant_table_folds():
    """Reading a constant table partially evaluates to pure logic."""
    aig = AIG()
    addr = make_word(aig, "addr", 3)
    contents = [3, 1, 4, 1, 5, 9, 2, 6]
    rows = [ops.const_word(value, 4) for value in contents]
    data = ops.table_read(aig, addr, rows)
    for address, expected in enumerate(contents):
        assert eval_lits(aig, data, pi_assign(addr, address)) == expected


def test_table_read_validates():
    aig = AIG()
    addr = make_word(aig, "addr", 1)
    with pytest.raises(ValueError):
        ops.table_read(aig, addr, [])
    with pytest.raises(ValueError):
        ops.table_read(aig, addr, [ops.const_word(0, 2), ops.const_word(0, 3)])
    with pytest.raises(ValueError):
        ops.table_read(aig, addr, [ops.const_word(0, 1)] * 3)


def test_table_read_short_table_pads_with_zero():
    aig = AIG()
    addr = make_word(aig, "addr", 2)
    rows = [ops.const_word(v, 2) for v in [1, 2, 3]]
    data = ops.table_read(aig, addr, rows)
    assert eval_lits(aig, data, pi_assign(addr, 3)) == 0


def test_from_truth_table():
    rng = random.Random(17)
    aig = AIG()
    inputs = make_word(aig, "x", 4)
    for _ in range(10):
        table = rng.getrandbits(16)
        lit = ops.from_truth_table(aig, table, inputs)
        for minterm in range(16):
            pis = pi_assign(inputs, minterm)
            assert eval_lits(aig, [lit], pis) == (table >> minterm) & 1
