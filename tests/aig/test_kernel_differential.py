"""Differential harness for the truth-table kernel backends.

The kernel contract (:class:`repro.aig.kernel.KernelBackend`) is
"exactly what the pure backend computes": byte-identical tables, the
same ``None``/over-budget outcomes, the same tie-breaks, and therefore
byte-identical optimized AIGs.  This file holds every backend to that:

* hypothesis-random AIGs and a controller-derived AIG run through the
  kernel-aware passes under each backend, comparing canonical hashes
  and PassRecord streams;
* the table algebra is cross-checked exhaustively at small widths and
  randomly at widths past the numpy backend's small-window cutoff
  (both against the canonical ``tt_util`` implementations);
* the fingerprint invisibility of the ``kernel=`` option, the
  resolution precedence (argument > ``REPRO_KERNEL`` > auto), and the
  ``project_table`` range validation are pinned.

Everything here that needs two backends skips cleanly when NumPy is
absent, so the no-NumPy CI leg still runs the pure-only contract
checks.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import tt_util
from repro.aig.dontcare import dc_rewrite
from repro.aig.graph import AIG
from repro.aig.kernel import (
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    KernelError,
    available_backends,
    resolve_backend,
)
from repro.aig.resub import resub
from repro.aig.rewrite import rewrite, tt_sweep
from repro.flow import PassManager
from repro.flow.cache import flow_fingerprint
from repro.tables.bits import all_ones, popcount, tt_support
from repro.track.bench import build_wide_window_aig, frontend_inputs

requires_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="NumPy is not installed: only the pure backend exists",
)

#: The kernel-aware passes, each taking ``kernel=``.
KERNEL_PASS_FNS = (
    ("tt_sweep", lambda aig, k: tt_sweep(aig, kernel=k)),
    ("rewrite", lambda aig, k: rewrite(aig, kernel=k)),
    ("resub", lambda aig, k: resub(aig, kernel=k)),
    ("dc_rewrite", lambda aig, k: dc_rewrite(aig, kernel=k)),
)


def build_random_aig(seed, num_inputs, num_nodes):
    rng = random.Random(seed)
    aig = AIG()
    pool = [aig.add_pi(f"x[{i}]") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for index in range(3):
        aig.add_po(f"f{index}", rng.choice(pool) ^ rng.randint(0, 1))
    cleaned, _ = aig.cleanup()
    return cleaned


def forced_vector_backend():
    """A numpy backend with the small-window cutoff disabled, so even
    tiny hypothesis graphs exercise the vector code paths instead of
    delegating to the inherited pure implementations."""
    from repro.aig.kernel.numpy_backend import NumpyBackend

    class ForcedNumpyBackend(NumpyBackend):
        _SMALL_VARS = 0

    return ForcedNumpyBackend()


@st.composite
def random_aig_spec(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_inputs = draw(st.integers(min_value=2, max_value=8))
    num_nodes = draw(st.integers(min_value=1, max_value=60))
    return seed, num_inputs, num_nodes


# -- pass-level differential ------------------------------------------


@requires_numpy
@given(random_aig_spec())
@settings(max_examples=20, deadline=None)
def test_passes_byte_identical_on_random_aigs(spec):
    aig = build_random_aig(*spec)
    pure = resolve_backend("pure")
    vector = resolve_backend("numpy")
    for name, fn in KERNEL_PASS_FNS:
        a = fn(aig, pure)
        b = fn(aig, vector)
        assert a.canonical_hash() == b.canonical_hash(), name


@requires_numpy
@given(random_aig_spec())
@settings(max_examples=10, deadline=None)
def test_passes_byte_identical_on_forced_vector_paths(spec):
    """Same as above with the small-window cutoff disabled, so the
    numpy array code (not its pure delegation) handles every window."""
    aig = build_random_aig(*spec)
    pure = resolve_backend("pure")
    forced = forced_vector_backend()
    for name, fn in KERNEL_PASS_FNS:
        a = fn(aig, pure)
        b = fn(aig, forced)
        assert a.canonical_hash() == b.canonical_hash(), name


@requires_numpy
def test_passes_byte_identical_on_wide_window_workload():
    """The bench workload with genuinely wide supports -- the regime
    the vector paths actually run in under default cutoffs."""
    aig = build_wide_window_aig(num_inputs=12, layers=6)
    pure = resolve_backend("pure")
    vector = resolve_backend("numpy")
    for kwargs in (
        dict(support_limit=12, max_divisors=24),
        dict(support_limit=12, max_divisors=24, k=4),
    ):
        a = resub(aig, kernel=pure, **kwargs)
        b = resub(aig, kernel=vector, **kwargs)
        assert a.canonical_hash() == b.canonical_hash()
    a = dc_rewrite(aig, support_limit=12, kernel=pure)
    b = dc_rewrite(aig, support_limit=12, kernel=vector)
    assert a.canonical_hash() == b.canonical_hash()


@requires_numpy
def test_controller_derived_flow_identical_across_backends():
    """A controller-derived AIG through the kernel-aware pipeline:
    identical result hashes, PassRecord streams (progress flags, AND
    deltas), and context progress under both backends."""
    fsm, _, _, _, _ = frontend_inputs(seed=0)
    seeded = PassManager.parse("fsm_encode{realize=case},elaborate").compile(
        ctrl=fsm
    )
    assert seeded.aig is not None

    def run(kernel):
        spec = (
            f"rewrite{{kernel={kernel}}},"
            f"resub{{kernel={kernel}}},"
            f"dc_rewrite{{kernel={kernel}}}"
        )
        return PassManager.parse(spec).compile(aig=seeded.aig)

    pure_ctx = run("pure")
    vector_ctx = run("numpy")
    assert pure_ctx.aig.canonical_hash() == vector_ctx.aig.canonical_hash()
    assert pure_ctx.progress == vector_ctx.progress

    def record_view(ctx):
        return [
            (r.name, r.skipped, r.rejected, r.failed, r.delta_ands)
            for r in ctx.records
        ]

    assert record_view(pure_ctx) == record_view(vector_ctx)


# -- fingerprint invisibility -----------------------------------------


def test_kernel_option_is_fingerprint_invisible():
    """``kernel=`` parses, typechecks, and renders away: the spec --
    and therefore the flow fingerprint -- is identical for every
    backend choice, so caches are shared across backends."""
    base = PassManager.parse("rewrite,resub{k=4},dc_rewrite")
    aig = build_random_aig(11, 5, 30)
    base_fp = flow_fingerprint(base.spec(), aig=aig)
    for kernel in KERNEL_CHOICES:
        pinned = PassManager.parse(
            f"rewrite{{kernel={kernel}}},"
            f"resub{{k=4,kernel={kernel}}},"
            f"dc_rewrite{{kernel={kernel}}}"
        )
        assert pinned.spec() == base.spec()
        assert flow_fingerprint(pinned.spec(), aig=aig) == base_fp


def test_kernel_option_rejects_unknown_names():
    with pytest.raises(Exception):
        PassManager.parse("rewrite{kernel=fpga}")


# -- backend resolution -----------------------------------------------


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    assert resolve_backend("pure").name == "pure"
    # Instances pass through untouched.
    backend = resolve_backend("pure")
    assert resolve_backend(backend) is backend
    # The environment is consulted only when no explicit choice is made.
    monkeypatch.setenv(KERNEL_ENV_VAR, "pure")
    assert resolve_backend(None).name == "pure"
    monkeypatch.setenv(KERNEL_ENV_VAR, "bogus")
    with pytest.raises(KernelError):
        resolve_backend(None)
    assert resolve_backend("pure").name == "pure"  # argument beats env


def test_resolve_backend_auto_fallback(monkeypatch):
    import repro.aig.kernel as kernel_mod

    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.setattr(kernel_mod, "numpy_available", lambda: False)
    # auto degrades silently; explicit numpy is an error.
    assert resolve_backend("auto").name == "pure"
    assert resolve_backend(None).name == "pure"
    with pytest.raises(KernelError):
        resolve_backend("numpy")
    with pytest.raises(KernelError):
        resolve_backend("gpu")


@requires_numpy
def test_resolve_backend_auto_prefers_numpy(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    assert resolve_backend(None).name == "numpy"
    assert resolve_backend("auto").name == "numpy"
    monkeypatch.setenv(KERNEL_ENV_VAR, "pure")
    assert resolve_backend(None).name == "pure"


# -- table algebra cross-checks ---------------------------------------


@requires_numpy
def test_table_algebra_exhaustive_small_vars():
    """Every table at n <= 3 through every algebra op, pure vs the
    forced-vector backend (the cutoff would otherwise delegate these
    sizes to pure, making the comparison vacuous)."""
    pure = resolve_backend("pure")
    forced = forced_vector_backend()
    for n in (1, 2, 3):
        for table in range(1 << (1 << n)):
            assert pure.popcount(table) == popcount(table)
            assert pure.support(table, n) == tt_support(table, n)
            for position in range(n + 1):
                assert pure.insert_var(table, position, n) == (
                    forced.insert_var(table, position, n)
                )
            for position in range(n):
                assert pure.remove_var(table, position, n) == (
                    forced.remove_var(table, position, n)
                )
            for r in range(n + 1):
                for keep in itertools.combinations(range(n), r):
                    assert pure.project_table(table, keep, n) == (
                        forced.project_table(table, keep, n)
                    )


@requires_numpy
def test_table_algebra_random_wide_vars():
    """Widths past the small-window cutoff, where the stock numpy
    backend really runs its vector code; checked against ``tt_util``
    as the canonical semantics."""
    vector = resolve_backend("numpy")
    rng = random.Random(2011)
    for n in (10, 11, 12):
        for _ in range(12):
            table = rng.getrandbits(1 << n)
            position = rng.randrange(n)
            assert vector.insert_var(table, position, n) == (
                tt_util.insert_var(table, position, n)
            )
            assert vector.remove_var(table, position, n) == (
                tt_util.remove_var(table, position, n)
            )
            keep = tuple(
                sorted(rng.sample(range(n), rng.randint(1, n)))
            )
            assert vector.project_table(table, keep, n) == (
                tt_util.project_table(table, keep, n)
            )
            from_leaves = tuple(sorted(rng.sample(range(100), n)))
            extra = sorted(
                set(range(100, 104)) | set(from_leaves)
            )
            assert vector.expand_table(
                table, from_leaves, tuple(extra)
            ) == tt_util.expand_table(table, from_leaves, tuple(extra))


@requires_numpy
def test_resub_primitives_match_on_wide_tables():
    """dependency_function / pick_divisors on wide random instances,
    vector vs pure (the resub hot path the GEMM scoring replaces)."""
    pure = resolve_backend("pure")
    vector = resolve_backend("numpy")
    rng = random.Random(7)
    for n in (10, 11):
        for _ in range(10):
            table = rng.getrandbits(1 << n)
            divisors = [
                rng.getrandbits(1 << n) for _ in range(rng.randint(1, 12))
            ]
            k = rng.randint(1, 4)
            assert pure.pick_divisors(table, divisors, n, k) == (
                vector.pick_divisors(table, divisors, n, k)
            )
            chosen = divisors[: rng.randint(1, min(4, len(divisors)))]
            assert pure.dependency_function(table, chosen, n) == (
                vector.dependency_function(table, chosen, n)
            )


# -- project_table range validation (regression) ----------------------


def test_project_table_rejects_out_of_range_positions():
    """``project_table`` must reject keep positions outside the
    table's variable range instead of silently folding garbage --
    in every implementation that exposes it."""
    table = 0b0110  # XOR over 2 vars
    with pytest.raises(ValueError, match="out of range"):
        tt_util.project_table(table, (0, 2), 2)
    with pytest.raises(ValueError, match="out of range"):
        tt_util.project_table(table, (-1,), 2)
    for name in available_backends():
        backend = resolve_backend(name)
        with pytest.raises(ValueError, match="out of range"):
            backend.project_table(table, (0, 2), 2)
        with pytest.raises(ValueError, match="out of range"):
            backend.project_table(table, (-1,), 2)
        # In-range projections still work, identically.
        assert backend.project_table(table, (0, 1), 2) == table
        assert backend.project_table(table, (0,), 2) == 0b10


def test_project_table_full_range_identity():
    for name in available_backends():
        backend = resolve_backend(name)
        universe = all_ones(3)
        for table in (0, 0b10101010, universe):
            assert backend.project_table(table, (0, 1, 2), 3) == table
