"""Unit tests for the AIG data structure."""

import pytest

from repro.aig.graph import AIG, CONST0, CONST1, lit_compl, lit_node, lit_sign


def test_literal_helpers():
    assert lit_node(7) == 3
    assert lit_sign(7) == 1
    assert lit_compl(6) == 7
    assert lit_compl(7) == 6


def test_constant_folding_rules():
    aig = AIG()
    a = aig.add_pi("a")
    assert aig.and_(a, CONST0) == CONST0
    assert aig.and_(CONST0, a) == CONST0
    assert aig.and_(a, CONST1) == a
    assert aig.and_(CONST1, a) == a
    assert aig.and_(a, a) == a
    assert aig.and_(a, lit_compl(a)) == CONST0
    assert aig.num_ands == 0


def test_structural_hashing_dedupes():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    n1 = aig.and_(a, b)
    n2 = aig.and_(b, a)
    assert n1 == n2
    assert aig.num_ands == 1


def test_derived_ops_truth():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("and", aig.and_(a, b))
    aig.add_po("or", aig.or_(a, b))
    aig.add_po("xor", aig.xor(a, b))
    aig.add_po("xnor", aig.xnor(a, b))
    node_a, node_b = aig.pis
    for va in (0, 1):
        for vb in (0, 1):
            pos, _ = aig.evaluate({node_a: va, node_b: vb})
            assert pos["and"] == (va & vb)
            assert pos["or"] == (va | vb)
            assert pos["xor"] == (va ^ vb)
            assert pos["xnor"] == 1 - (va ^ vb)


def test_mux_folds_equal_branches():
    aig = AIG()
    s = aig.add_pi("s")
    a = aig.add_pi("a")
    assert aig.mux(s, a, a) == a
    assert aig.mux(CONST1, a, s) == a
    assert aig.mux(CONST0, a, s) == s


def test_bit_parallel_evaluation():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.and_(a, lit_compl(b)))
    node_a, node_b = aig.pis
    pos, _ = aig.evaluate({node_a: 0b1100, node_b: 0b1010}, width=4)
    assert pos["f"] == 0b0100


def test_latch_roundtrip():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q", reset_kind="sync", reset_value=1)
    aig.set_latch_next(q, aig.xor(q, a))
    aig.add_po("out", q)
    latch = aig.latches[0]
    assert latch.reset_kind == "sync"
    assert latch.reset_value == 1
    # Latch defaults to its reset value when no state is supplied.
    pos, nxt = aig.evaluate({aig.pis[0]: 1})
    assert pos["out"] == 1
    assert nxt["q"] == 0


def test_latch_validation():
    aig = AIG()
    a = aig.add_pi("a")
    with pytest.raises(ValueError):
        aig.set_latch_next(a, CONST0)
    with pytest.raises(ValueError):
        aig.add_latch("bad", reset_kind="falling")
    q = aig.add_latch("q")
    with pytest.raises(ValueError):
        aig.set_latch_next(lit_compl(q), CONST0)


def test_topo_order_respects_dependencies():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    ab = aig.and_(a, b)
    abc = aig.and_(ab, c)
    aig.add_po("f", abc)
    order = aig.topo_order()
    assert order.index(lit_node(ab)) < order.index(lit_node(abc))


def test_support():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_pi("unused")
    f = aig.and_(a, b)
    assert aig.support(f) == {lit_node(a), lit_node(b)}


def test_depth_and_levels():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    f = aig.and_(aig.and_(a, b), c)
    aig.add_po("f", f)
    assert aig.depth() == 2


def test_cleanup_drops_dangling():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.and_(a, b)  # dangling
    keep = aig.or_(a, b)
    aig.add_po("f", keep)
    compact, _ = aig.cleanup()
    assert compact.num_ands == 1
    assert compact.pi_names == ["a", "b"]


def test_cleanup_preserves_function():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    q = aig.add_latch("q")
    aig.set_latch_next(q, aig.xor(q, aig.and_(a, b)))
    aig.add_po("f", aig.or_(q, a))
    compact, _ = aig.cleanup()
    for va in (0, 1):
        for vb in (0, 1):
            for vq in (0, 1):
                old_po, old_next = aig.evaluate(
                    {aig.pis[0]: va, aig.pis[1]: vb},
                    {aig.latches[0].node: vq},
                )
                new_po, new_next = compact.evaluate(
                    {compact.pis[0]: va, compact.pis[1]: vb},
                    {compact.latches[0].node: vq},
                )
                assert old_po == new_po
                assert old_next == new_next


def test_check_lit_rejects_unknown():
    aig = AIG()
    with pytest.raises(ValueError):
        aig.add_po("f", 99)
