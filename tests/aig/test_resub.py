"""Resubstitution: SAT-checked equivalence and node accounting."""

import random

import pytest

from repro.aig.graph import AIG, lit_compl
from repro.aig.kernel import available_backends
from repro.aig.resub import resub
from repro.flow import PassManager
from repro.sat.equiv import check_combinational_equivalence

from tests.aig.test_passes import random_aig


@pytest.mark.parametrize("kernel", available_backends())
def test_resub_preserves_function_sat(kernel):
    """The randomized harness of the tt_sweep/rewrite tests, with the
    check upgraded to SAT equivalence (latches and all outputs), run
    under every available kernel backend."""
    for seed in range(12):
        rng = random.Random(seed)
        aig, _ = random_aig(rng)
        cleaned, _ = aig.cleanup()
        substituted = resub(cleaned, kernel=kernel)
        assert check_combinational_equivalence(cleaned, substituted), seed
        assert substituted.num_ands <= cleaned.num_ands, seed


def test_resub_reduces_some_designs():
    """Across the harness seeds, resubstitution must actually fire."""
    improved = 0
    for seed in range(20):
        rng = random.Random(seed)
        aig, _ = random_aig(rng)
        cleaned, _ = aig.cleanup()
        substituted = resub(cleaned)
        if substituted.num_ands < cleaned.num_ands:
            improved += 1
    assert improved > 0


def test_resub_reduces_the_bench_design():
    """Acceptance: a net AND decrease on a benchmark design, SAT-clean."""
    from repro.track.bench import build_table_aig

    aig = build_table_aig()
    substituted = resub(aig)
    assert substituted.num_ands < aig.num_ands
    assert check_combinational_equivalence(aig, substituted)


def test_resub_finds_existing_divisor():
    """A node equal to an OR of two existing nodes collapses onto them."""
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    d = aig.add_pi("d")
    u = aig.and_(a, b)
    v = aig.and_(c, d)
    aig.add_po("u", u)
    aig.add_po("v", v)
    # f = ab + cd built as its own 5-node mux-ish structure: with u and
    # v available as divisors, the whole cone is one OR.
    f = aig.or_(
        aig.and_(aig.and_(a, b), lit_compl(aig.and_(c, d))),
        aig.and_(c, d),
    )
    aig.add_po("f", f)
    cleaned, _ = aig.cleanup()
    substituted = resub(cleaned)
    assert check_combinational_equivalence(cleaned, substituted)
    assert substituted.num_ands == 3  # u, v, and one OR


def test_resub_on_sequential_graphs():
    """Latch outputs are divisor sources like PIs; resets survive."""
    aig = AIG()
    a = aig.add_pi("a")
    s = aig.add_latch("s", reset_kind="sync", reset_value=1)
    aig.set_latch_next(s, aig.and_(a, lit_compl(s)))
    aig.add_po("o", aig.or_(aig.and_(a, s), aig.and_(a, lit_compl(s))))
    cleaned, _ = aig.cleanup()
    substituted = resub(cleaned)
    assert check_combinational_equivalence(cleaned, substituted)


def test_resub_parameter_validation():
    aig = AIG()
    with pytest.raises(ValueError):
        resub(aig, k=0)
    with pytest.raises(ValueError):
        resub(aig, k=7)
    with pytest.raises(ValueError):
        resub(aig, max_divisors=0)
    with pytest.raises(ValueError):
        resub(aig, support_limit=0)


def test_resub_pass_spec_round_trips():
    spec = "resub{k=2,max_divisors=8,support_limit=6}"
    manager = PassManager.parse(spec)
    assert manager.spec() == spec
    assert PassManager.parse(manager.spec()).spec() == spec


def test_resub_pass_runs_in_a_pipeline():
    rng = random.Random(3)
    aig, _ = random_aig(rng)
    cleaned, _ = aig.cleanup()
    ctx = PassManager.parse("resub").compile(aig=cleaned)
    [record] = [r for r in ctx.records if r.name == "resub"]
    assert record.before is not None and record.after is not None
    assert ctx.aig.num_ands <= cleaned.num_ands
    assert check_combinational_equivalence(cleaned, ctx.aig)
