"""Unit tests for AIG optimization passes (balance, sweep, rewrite, cuts)."""

import random

from repro.aig import balance, enumerate_cuts, rewrite
from repro.aig.graph import AIG, lit_compl
from repro.aig.rewrite import tt_sweep
from repro.aig import ops

from tests.helpers import eval_lits, make_word, pi_assign


def random_aig(rng, num_inputs=6, num_nodes=40, num_outputs=4):
    aig = AIG()
    inputs = make_word(aig, "x", num_inputs)
    pool = list(inputs)
    for _ in range(num_nodes):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for index in range(num_outputs):
        aig.add_po(f"f{index}", rng.choice(pool) ^ rng.randint(0, 1))
    return aig, inputs


def outputs_on_all_inputs(aig, inputs, num_inputs):
    results = []
    lits = [lit for _, lit in aig.pos]
    for value in range(1 << num_inputs):
        results.append(eval_lits(aig, lits, pi_assign(inputs, value)))
    return results


def check_pass_preserves_function(pass_fn, seed):
    rng = random.Random(seed)
    aig, inputs = random_aig(rng)
    before = outputs_on_all_inputs(aig, inputs, 6)
    optimized = pass_fn(aig)
    new_inputs = [node << 1 for node in optimized.pis]
    after = outputs_on_all_inputs(optimized, new_inputs, 6)
    assert before == after


def test_balance_preserves_function():
    for seed in range(5):
        check_pass_preserves_function(balance, seed)


def test_balance_reduces_chain_depth():
    aig = AIG()
    xs = make_word(aig, "x", 16)
    acc = xs[0]
    for lit in xs[1:]:
        acc = aig.and_(acc, lit)
    aig.add_po("f", acc)
    assert aig.depth() == 15
    balanced = balance(aig)
    assert balanced.depth() == 4


def test_tt_sweep_preserves_function():
    for seed in range(5):
        check_pass_preserves_function(tt_sweep, seed + 100)


def test_tt_sweep_merges_equivalent_structures():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    # (a & b) & c and a & (b & c) are structurally different but equal.
    left = aig.and_(aig.and_(a, b), c)
    right = aig.and_(a, aig.and_(b, c))
    aig.add_po("l", left)
    aig.add_po("r", right)
    swept = tt_sweep(aig)
    (_, l_lit), (_, r_lit) = swept.pos
    assert l_lit == r_lit


def test_tt_sweep_finds_constants():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    # (a | b) | (~a & ~b) is a tautology the strash rules cannot see.
    tautology = aig.or_(aig.or_(a, b), aig.and_(lit_compl(a), lit_compl(b)))
    aig.add_po("t", tautology)
    swept = tt_sweep(aig)
    assert swept.pos[0][1] == 1
    assert swept.num_ands == 0


def test_tt_sweep_collapses_redundant_mux_tree():
    """A mux tree whose leaves mostly agree collapses (partial evaluation)."""
    aig = AIG()
    addr = make_word(aig, "addr", 4)
    rows = [ops.const_word(0b01, 2) for _ in range(16)]
    rows[3] = ops.const_word(0b10, 2)
    data = ops.table_read(aig, addr, rows)
    aig.add_po("d0", data[0])
    aig.add_po("d1", data[1])
    swept = tt_sweep(aig)
    # d1 = (addr == 3), d0 = ~(addr == 3): complement sharing applies.
    assert swept.num_ands <= 4


def test_rewrite_preserves_function():
    for seed in range(5):
        check_pass_preserves_function(rewrite, seed + 200)


def test_rewrite_does_not_blow_up():
    rng = random.Random(5)
    aig, _ = random_aig(rng, num_inputs=8, num_nodes=120, num_outputs=6)
    cleaned, _ = aig.cleanup()
    rewritten = rewrite(cleaned)
    assert rewritten.num_ands <= cleaned.num_ands + 2


def test_cut_enumeration_tables_match_simulation():
    rng = random.Random(11)
    aig, inputs = random_aig(rng, num_inputs=5, num_nodes=30, num_outputs=2)
    cuts = enumerate_cuts(aig, k=4)
    for node in aig.topo_order():
        for cut in cuts[node]:
            if not cut.leaves:
                continue
            # Check the cut table against direct evaluation for each
            # assignment of the leaves that is achievable from the PIs.
            for value in range(1 << 5):
                pis = pi_assign(inputs, value)
                leaf_vals = eval_lits(aig, [leaf << 1 for leaf in cut.leaves], pis)
                node_val = eval_lits(aig, [node << 1], pis)
                assert (cut.table >> leaf_vals) & 1 == node_val


def test_cuts_include_trivial_cut():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    f = aig.and_(a, b)
    aig.add_po("f", f)
    cuts = enumerate_cuts(aig)
    node = f >> 1
    assert any(cut.leaves == (node,) for cut in cuts[node])
