"""Don't-care-aware rewriting: SAT equivalence and DC acceptance."""

import random

import pytest

from repro.aig.dontcare import dc_rewrite
from repro.aig.graph import AIG, lit_compl
from repro.aig.kernel import available_backends
from repro.aig.rewrite import rewrite
from repro.flow import PassManager
from repro.sat.equiv import check_combinational_equivalence

from tests.aig.test_passes import random_aig


@pytest.mark.parametrize("kernel", available_backends())
def test_dc_rewrite_preserves_observable_function_sat(kernel):
    """The randomized harness of the tt_sweep/rewrite tests; the
    don't-care pass may restructure dead and masked logic freely, but
    every output and latch next-state function must stay SAT-equal --
    under every available kernel backend."""
    for seed in range(12):
        rng = random.Random(seed + 500)
        aig, _ = random_aig(rng)
        cleaned, _ = aig.cleanup()
        optimized = dc_rewrite(cleaned, kernel=kernel)
        assert check_combinational_equivalence(cleaned, optimized), seed
        assert optimized.num_ands <= cleaned.num_ands, seed


def test_dc_rewrite_reduces_some_designs():
    improved = 0
    for seed in range(20):
        rng = random.Random(seed + 500)
        aig, _ = random_aig(rng)
        cleaned, _ = aig.cleanup()
        if dc_rewrite(cleaned).num_ands < cleaned.num_ands:
            improved += 1
    assert improved > 0


def test_dc_rewrite_reduces_the_bench_design():
    """Acceptance: a net AND decrease on a benchmark design, SAT-clean."""
    from repro.track.bench import build_table_aig

    aig = build_table_aig()
    optimized = dc_rewrite(aig)
    assert optimized.num_ands < aig.num_ands
    assert check_combinational_equivalence(aig, optimized)


def _sdc_design():
    """root = u XOR v with u = (x1&x2)&x5, v = (x3&x4)&~x5: the leaf
    vector (u,v) = (1,1) is unsatisfiable, so XOR may relax to OR.
    Supports are wider than the cut bound, so the exact pass cannot
    see through to the primary inputs."""
    aig = AIG()
    x1, x2, x3, x4, x5 = (aig.add_pi(f"x{i}") for i in range(1, 6))
    g = aig.and_(x1, x2)
    w = aig.and_(x3, x4)
    u = aig.and_(g, x5)
    v = aig.and_(w, lit_compl(x5))
    t1 = aig.and_(u, lit_compl(v))
    t2 = aig.and_(lit_compl(u), v)
    root = lit_compl(aig.and_(lit_compl(t1), lit_compl(t2)))
    aig.add_po("o", root)
    aig.add_po("v", v)  # keeps v alive under either rewriting
    cleaned, _ = aig.cleanup()
    return cleaned


def _odc_design():
    """n = mux(s; a, b) is observed only under m = s&w1&w2&w3; the
    mask forces s=1, under which the mux is just a."""
    aig = AIG()
    s, a, b, w1, w2, w3 = (
        aig.add_pi(name) for name in ("s", "a", "b", "w1", "w2", "w3")
    )
    n = aig.mux(s, a, b)
    m = aig.and_(aig.and_(s, w1), aig.and_(w2, w3))
    aig.add_po("o", aig.and_(n, m))
    cleaned, _ = aig.cleanup()
    return cleaned


@pytest.mark.parametrize("builder", [_sdc_design, _odc_design])
def test_dc_pass_accepts_what_exact_pass_rejects(builder):
    """The point of the pass: a strictly better local implementation
    the exact-function pass must reject (satisfiability don't-cares in
    one design, observability don't-cares in the other)."""
    design = builder()
    exact = rewrite(design)
    relaxed = dc_rewrite(design)
    assert exact.num_ands == design.num_ands  # exact finds nothing
    assert relaxed.num_ands < design.num_ands
    assert check_combinational_equivalence(design, relaxed)


def test_dc_rewrite_on_sequential_graphs():
    """Latch next-state cones count as observation points: logic that
    only feeds state must not be treated as unobservable."""
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    s = aig.add_latch("s", reset_kind="async", reset_value=0)
    aig.set_latch_next(s, aig.xor(a, aig.and_(b, s)))
    aig.add_po("o", aig.and_(s, a))
    cleaned, _ = aig.cleanup()
    optimized = dc_rewrite(cleaned)
    assert check_combinational_equivalence(cleaned, optimized)


def test_dc_rewrite_parameter_validation():
    aig = AIG()
    with pytest.raises(ValueError):
        dc_rewrite(aig, tfo_depth=0)
    with pytest.raises(ValueError):
        dc_rewrite(aig, support_limit=0)


def test_dc_rewrite_pass_spec_round_trips():
    spec = "dc_rewrite{k=3,max_cuts=4,support_limit=8,tfo_depth=3}"
    manager = PassManager.parse(spec)
    assert manager.spec() == spec
    assert PassManager.parse(manager.spec()).spec() == spec


def test_dc_rewrite_pass_runs_in_a_pipeline():
    design = _odc_design()
    ctx = PassManager.parse("dc_rewrite").compile(aig=design)
    [record] = [r for r in ctx.records if r.name == "dc_rewrite"]
    assert record.delta_ands is not None and record.delta_ands < 0
    assert "don't-cares" in " ".join(record.messages)
    assert check_combinational_equivalence(design, ctx.aig)
