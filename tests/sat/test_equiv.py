"""Unit tests for Tseitin encoding and equivalence checking."""

import random

import pytest

from repro.aig.graph import AIG, lit_compl
from repro.sat.cnf import CnfBuilder
from repro.sat.equiv import (
    check_combinational_equivalence,
    check_equivalence_under_care,
    prove_lit_constant,
    prove_lits_equal,
)

from tests.helpers import make_word


def two_input_pair(build_left, build_right):
    left = AIG()
    a, b = left.add_pi("a"), left.add_pi("b")
    left.add_po("f", build_left(left, a, b))
    right = AIG()
    a2, b2 = right.add_pi("a"), right.add_pi("b")
    right.add_po("f", build_right(right, a2, b2))
    return left, right


def test_demorgan_equivalence():
    left, right = two_input_pair(
        lambda g, a, b: lit_compl(g.and_(a, b)),
        lambda g, a, b: g.or_(lit_compl(a), lit_compl(b)),
    )
    assert check_combinational_equivalence(left, right)


def test_inequivalence_gives_counterexample():
    left, right = two_input_pair(
        lambda g, a, b: g.and_(a, b),
        lambda g, a, b: g.or_(a, b),
    )
    result = check_combinational_equivalence(left, right)
    assert not result
    assert result.failing_output == "f"
    # The counterexample must actually distinguish AND from OR.
    va = result.counterexample.get("a", False)
    vb = result.counterexample.get("b", False)
    assert (va and vb) != (va or vb)


def test_output_name_mismatch_raises():
    left = AIG()
    left.add_po("x", 0)
    right = AIG()
    right.add_po("y", 0)
    with pytest.raises(ValueError):
        check_combinational_equivalence(left, right)


def test_latch_next_state_checked():
    def build(swap):
        aig = AIG()
        a = aig.add_pi("a")
        q = aig.add_latch("q")
        nxt = aig.xor(q, a) if not swap else aig.and_(q, a)
        aig.set_latch_next(q, nxt)
        aig.add_po("out", q)
        return aig

    assert check_combinational_equivalence(build(False), build(False))
    assert not check_combinational_equivalence(build(False), build(True))


def test_latch_reset_mismatch_raises():
    def build(kind):
        aig = AIG()
        q = aig.add_latch("q", reset_kind=kind)
        aig.set_latch_next(q, q)
        aig.add_po("out", q)
        return aig

    with pytest.raises(ValueError):
        check_combinational_equivalence(build("sync"), build("async"))


def test_equivalence_under_care():
    # left = mux(sel is onehot) ...: f = a&b vs g = a; equal when b=1.
    left = AIG()
    a, b = left.add_pi("a"), left.add_pi("b")
    left.add_po("f", left.and_(a, b))
    right = AIG()
    a2, b2 = right.add_pi("a"), right.add_pi("b")
    del b2
    right.add_po("f", a2)

    care = AIG()
    care.add_pi("a")
    cb = care.add_pi("b")
    care.add_po("care", cb)  # care set: b == 1

    assert check_equivalence_under_care(left, right, care)
    assert not check_combinational_equivalence(left, right)


def test_care_output_missing_raises():
    left = AIG()
    left.add_po("f", 0)
    right = AIG()
    right.add_po("f", 0)
    care = AIG()
    with pytest.raises(ValueError):
        check_equivalence_under_care(left, right, care)


def test_prove_lit_constant_with_onehot_care():
    """The ones-counter example from the paper's Section III.

    For a one-hot bus y, y[i] & y[j] (i != j) is constant 0 -- the
    optimization that lets the AND/mux downstream logic disappear.
    """
    aig = AIG()
    y = make_word(aig, "y", 4)
    pair = aig.and_(y[0], y[1])
    builder = CnfBuilder()
    # Encode one-hot care: exactly one of y is true.
    sat_y = [builder.encode(aig, lit) for lit in y]
    care_var = builder.solver.new_var()
    # care -> at least one
    builder.solver.add_clause([-care_var] + sat_y)
    # care -> at most one
    for i in range(4):
        for j in range(i + 1, 4):
            builder.solver.add_clause([-care_var, -sat_y[i], -sat_y[j]])

    assert prove_lit_constant(aig, pair, [care_var], builder) == 0
    # Without the care assumption the AND is not constant.
    assert prove_lit_constant(aig, pair, [], builder) is None
    # OR of all bits is constant 1 under one-hot care.
    any_bit = aig.or_(aig.or_(y[0], y[1]), aig.or_(y[2], y[3]))
    assert prove_lit_constant(aig, any_bit, [care_var], builder) == 1


def test_prove_lits_equal():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    left = aig.and_(a, b)
    right = lit_compl(aig.or_(lit_compl(a), lit_compl(b)))
    builder = CnfBuilder()
    assert prove_lits_equal(aig, left, right, [], builder)
    assert not prove_lits_equal(aig, left, a, [], builder)


def test_random_rebuild_equivalence():
    """cleanup() output is always equivalent to the original."""
    rng = random.Random(6)
    for _ in range(10):
        aig = AIG()
        xs = make_word(aig, "x", 5)
        pool = list(xs)
        for _ in range(25):
            a = rng.choice(pool) ^ rng.randint(0, 1)
            b = rng.choice(pool) ^ rng.randint(0, 1)
            pool.append(aig.and_(a, b))
        aig.add_po("f", pool[-1])
        aig.add_po("g", rng.choice(pool))
        rebuilt, _ = aig.cleanup()
        assert check_combinational_equivalence(aig, rebuilt)
