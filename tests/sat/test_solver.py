"""Unit tests for the CDCL SAT solver, validated against brute force."""

import itertools
import random

import pytest

from repro.sat.solver import Solver, _luby


def brute_force_sat(num_vars, clauses, assumptions=()):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}

        def value(lit):
            v = assignment[abs(lit)]
            return v if lit > 0 else not v

        if all(value(a) for a in assumptions) and all(
            any(value(lit) for lit in clause) for clause in clauses
        ):
            return True
    return False


def test_luby_sequence():
    expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
    assert [_luby(i) for i in range(len(expected))] == expected


def test_empty_problem_is_sat():
    assert Solver().solve()


def test_single_unit():
    solver = Solver()
    solver.add_clause([1])
    assert solver.solve()
    assert solver.model_value(1)


def test_contradictory_units():
    solver = Solver()
    solver.add_clause([1])
    solver.add_clause([-1])
    assert not solver.solve()


def test_empty_clause_unsat():
    solver = Solver()
    solver.add_clause([])
    assert not solver.solve()


def test_tautological_clause_dropped():
    solver = Solver()
    solver.add_clause([1, -1])
    assert solver.solve()


def test_zero_literal_rejected():
    with pytest.raises(ValueError):
        Solver().add_clause([0])


def test_simple_implication_chain():
    solver = Solver()
    solver.add_clause([1])
    solver.add_clause([-1, 2])
    solver.add_clause([-2, 3])
    assert solver.solve()
    assert solver.model_value(3)


def test_unsat_triangle():
    solver = Solver()
    for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
        solver.add_clause(clause)
    assert not solver.solve()


def test_pigeonhole_3_into_2_unsat():
    # Variables p[i][j]: pigeon i in hole j; i in 0..2, j in 0..1.
    def var(i, j):
        return 1 + i * 2 + j

    solver = Solver()
    for i in range(3):
        solver.add_clause([var(i, 0), var(i, 1)])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                solver.add_clause([-var(i1, j), -var(i2, j)])
    assert not solver.solve()


def test_assumptions_flip_outcome():
    solver = Solver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1, -2]) is False
    assert solver.solve(assumptions=[-1]) is True
    assert solver.model_value(2)
    # Solver stays reusable after an UNSAT assumption call.
    assert solver.solve() is True


def test_assumption_of_fixed_var():
    solver = Solver()
    solver.add_clause([1])
    assert solver.solve(assumptions=[1])
    assert not solver.solve(assumptions=[-1])


def test_model_satisfies_clauses():
    rng = random.Random(0)
    for _ in range(30):
        num_vars = rng.randint(3, 8)
        clauses = []
        for _ in range(rng.randint(2, 20)):
            size = rng.randint(1, 3)
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(size)
            ]
            clauses.append(clause)
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve():
            model = solver.model
            assert all(
                any(solver.model_value(lit) for lit in clause) for clause in clauses
            )


def test_agrees_with_bruteforce_random():
    rng = random.Random(42)
    for trial in range(120):
        num_vars = rng.randint(2, 7)
        clauses = []
        for _ in range(rng.randint(1, 24)):
            size = rng.randint(1, 4)
            clauses.append(
                [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(size)]
            )
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        expected = brute_force_sat(num_vars, clauses)
        assert solver.solve() == expected, f"trial {trial}: {clauses}"


def test_agrees_with_bruteforce_under_assumptions():
    rng = random.Random(77)
    for trial in range(80):
        num_vars = rng.randint(2, 6)
        clauses = []
        for _ in range(rng.randint(1, 16)):
            size = rng.randint(1, 3)
            clauses.append(
                [rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(size)]
            )
        assumed_vars = rng.sample(range(1, num_vars + 1), rng.randint(0, num_vars))
        assumptions = [v * rng.choice([-1, 1]) for v in assumed_vars]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        expected = brute_force_sat(num_vars, clauses, assumptions)
        got = solver.solve(assumptions=assumptions)
        assert got == expected, f"trial {trial}: {clauses} assume {assumptions}"
        # Repeat the query to check reusability/incremental soundness.
        assert solver.solve(assumptions=assumptions) == expected
        assert solver.solve() == brute_force_sat(num_vars, clauses)
