"""Shared helpers for driving AIGs in tests."""

from repro.aig.graph import AIG, lit_node, lit_sign


def make_word(aig: AIG, name: str, width: int) -> list[int]:
    """Create ``width`` primary inputs named ``name[0]..``, LSB first.

    Uses the same ``name[i]`` bit-naming convention as the elaborator,
    so helpers that locate buses by name work on hand-built AIGs too.
    """
    return [aig.add_pi(f"{name}[{i}]") for i in range(width)]


def pi_assign(word: list[int], value: int) -> dict[int, int]:
    """Map the PI nodes of ``word`` to the bits of ``value``."""
    return {lit_node(lit): (value >> i) & 1 for i, lit in enumerate(word)}


def eval_lits(aig: AIG, lits: list[int], pi_values: dict[int, int]) -> int:
    """Evaluate arbitrary literals as a word without mutating the AIG."""
    mask = 1
    values = [0] * aig.num_nodes
    for node in aig.pis:
        values[node] = pi_values.get(node, 0) & mask
    for latch in aig.latches:
        values[latch.node] = latch.reset_value

    def lit_value(lit: int) -> int:
        value = values[lit_node(lit)]
        return value ^ 1 if lit_sign(lit) else value

    for node in aig.topo_order(roots=[lit for lit in lits if lit > 1]):
        f0, f1 = aig.fanins(node)
        values[node] = lit_value(f0) & lit_value(f1)

    result = 0
    for index, lit in enumerate(lits):
        if lit_value(lit):
            result |= 1 << index
    return result
