"""End-to-end integration: generator -> tables -> synthesis -> netlist.

Fuzzes the complete path the paper advocates: a random controller
spec, emitted as tables, bound, compiled with annotations, and the
resulting *gate-level netlist* checked cycle-by-cycle against the
abstract spec.
"""

import random

import pytest

from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import fsm_to_case_rtl, fsm_to_table_rtl
from repro.pe import bind_tables
from repro.controllers.fsm_rtl import table_rows
from repro.sim.crosscheck import NetlistSim
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import CompileOptions, StateAnnotation


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("style", ["case", "table", "table_annotated"])
def test_netlist_implements_the_spec(seed, style):
    rng = random.Random(seed)
    m, n, s = 2, 3, rng.choice([3, 5, 6])
    spec = random_fsm(m, n, s, rng)
    compiler = DesignCompiler()

    if style == "case":
        module = fsm_to_case_rtl(spec)
        options = CompileOptions()
    else:
        module = fsm_to_table_rtl(spec)
        annotations = (
            [StateAnnotation("state", tuple(range(s)))]
            if style == "table_annotated"
            else []
        )
        options = CompileOptions(state_annotations=annotations)
    result = compiler.compile(module, options)

    gate = NetlistSim(result.netlist)
    state = spec.reset_state
    for cycle in range(150):
        word = rng.getrandbits(m)
        got = gate.step_words({"in": word})
        expected_state, expected_out = spec.step(state, word)
        assert got["out"] == expected_out, f"{style} seed={seed} cycle={cycle}"
        state = expected_state


@pytest.mark.slow
def test_flexible_vs_bound_equivalence_through_synthesis():
    """Program the flexible netlist; it must match the bound netlist."""
    rng = random.Random(9)
    spec = random_fsm(2, 2, 4, rng)
    compiler = DesignCompiler()

    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = bind_tables(
        flexible,
        {
            "next_mem": table_rows(spec, "next"),
            "out_mem": table_rows(spec, "output"),
        },
    )
    flexible_result = compiler.compile(flexible)
    bound_result = compiler.compile(bound)

    flex_gate = NetlistSim(flexible_result.netlist)
    for mem, which in (("next_mem", "next"), ("out_mem", "output")):
        for addr, word in enumerate(table_rows(spec, which)):
            flex_gate.step_words(
                {f"{mem}_we": 1, f"{mem}_waddr": addr, f"{mem}_wdata": word}
            )
    # Reset the state register (programming advanced the FSM).
    flex_gate.state.update(
        {
            name: value
            for name, value in flex_gate.state.items()
            if not name.startswith("state")
        }
    )
    for bit in range(spec.state_bits):
        flex_gate.state[f"state[{bit}]"] = (spec.reset_state >> bit) & 1

    bound_gate = NetlistSim(bound_result.netlist)
    for cycle in range(120):
        word = rng.getrandbits(2)
        flex_out = flex_gate.step_words(
            {"in": word, "next_mem_we": 0, "out_mem_we": 0}
        )
        bound_out = bound_gate.step_words({"in": word})
        assert flex_out["out"] == bound_out["out"], f"cycle {cycle}"


def test_annotated_compile_reports_folding_work():
    rng = random.Random(4)
    spec = random_fsm(2, 4, 5, rng)
    module = fsm_to_table_rtl(spec)
    result = DesignCompiler().compile(
        module,
        CompileOptions(
            state_annotations=[StateAnnotation("state", tuple(range(5)))],
        ),
    )
    assert result.honoured_annotations
    assert any("stateprop" in line or "encode" in line for line in result.log)
