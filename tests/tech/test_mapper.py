"""Unit tests for technology mapping (validated by netlist simulation)."""

import random

from repro.aig.graph import AIG, lit_compl
from repro.tech.cells import Library
from repro.tech.mapper import map_aig

from tests.helpers import make_word


def crosscheck_netlist(aig, netlist, cycles=64, seed=0, latch_bits=0):
    """Drive AIG and netlist with identical random vectors."""
    rng = random.Random(seed)
    for _ in range(cycles):
        pi_values = {node: rng.getrandbits(1) for node in aig.pis}
        latch_values = {
            latch.node: rng.getrandbits(1) for latch in aig.latches
        }
        want_pos, want_next = aig.evaluate(pi_values, latch_values)
        name_values = {
            name: pi_values[node] for name, node in zip(aig.pi_names, aig.pis)
        }
        flop_values = {
            latch.name: latch_values[latch.node] for latch in aig.latches
        }
        got_pos, got_next = netlist.evaluate(name_values, flop_values)
        assert got_pos == want_pos
        assert got_next == want_next


def test_map_simple_gate():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.and_(a, b))
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    report = netlist.area_report()
    assert report.num_cells >= 1
    assert report.sequential == 0


def test_nand_matches_without_inverter():
    """~(a & b) should map to one NAND2, not AND2+INV."""
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", lit_compl(aig.and_(a, b)))
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    assert len(netlist.instances) == 1
    assert netlist.instances[0].cell_name == "NAND2"


def test_xor_maps_to_xor_cell():
    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.xor(a, b))
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    names = {inst.cell_name for inst in netlist.instances}
    assert names <= {"XOR2", "XNOR2", "INV"}
    assert len(netlist.instances) <= 2


def test_mux_maps_compactly():
    aig = AIG()
    s = aig.add_pi("s")
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.mux(s, a, b))
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    assert len(netlist.instances) <= 2


def test_constant_outputs_use_ties():
    aig = AIG()
    aig.add_pi("a")
    aig.add_po("zero", 0)
    aig.add_po("one", 1)
    netlist = map_aig(aig)
    assert netlist.num_ties == 2
    pos, _ = netlist.evaluate({"a": 1})
    assert pos == {"zero": 0, "one": 1}


def test_latches_map_to_reset_matched_flops():
    aig = AIG()
    a = aig.add_pi("a")
    for kind in ("none", "sync", "async"):
        q = aig.add_latch(f"q_{kind}", reset_kind=kind, reset_value=1)
        aig.set_latch_next(q, aig.xor(q, a))
        aig.add_po(f"o_{kind}", q)
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    kinds = {flop.name: flop.cell.reset_kind for flop in netlist.flops}
    assert kinds == {"q_none": "none", "q_sync": "sync", "q_async": "async"}


def test_random_aigs_map_correctly():
    rng = random.Random(23)
    for trial in range(8):
        aig = AIG()
        xs = make_word(aig, "x", 6)
        pool = list(xs)
        for _ in range(60):
            a = rng.choice(pool) ^ rng.randint(0, 1)
            b = rng.choice(pool) ^ rng.randint(0, 1)
            pool.append(aig.and_(a, b))
        for index in range(4):
            aig.add_po(f"f{index}", rng.choice(pool) ^ rng.randint(0, 1))
        cleaned, _ = aig.cleanup()
        netlist = map_aig(cleaned)
        crosscheck_netlist(cleaned, netlist, cycles=64, seed=trial)


def test_mapping_cheaper_than_naive():
    """Area-flow mapping beats one-cell-per-AND on a shared structure."""
    aig = AIG()
    xs = make_word(aig, "x", 8)
    # 8-input AND tree: should use NAND4/NOR trees, far fewer than 7 AND2.
    acc = xs[0]
    for lit in xs[1:]:
        acc = aig.and_(acc, lit)
    aig.add_po("f", acc)
    netlist = map_aig(aig)
    crosscheck_netlist(aig, netlist)
    and2 = Library.tsmc90ish().cells["AND2"]
    naive_area = 7 * and2.area
    assert netlist.area_report().combinational < naive_area
