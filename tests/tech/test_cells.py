"""Unit tests for the standard cell library."""

import pytest

from repro.tech.cells import Cell, FlopCell, Library, _tt


def test_tt_helper():
    assert _tt(lambda a: a, 1) == 0b10
    assert _tt(lambda a, b: a and b, 2) == 0b1000
    assert _tt(lambda a, b: a or b, 2) == 0b1110


def test_default_library_has_core_cells():
    lib = Library.tsmc90ish()
    for name in ("INV", "NAND2", "NOR2", "XOR2", "MUX2", "AOI21"):
        assert name in lib.cells
    assert lib.inverter.name == "INV"


def test_cell_truth_tables_are_correct():
    lib = Library.tsmc90ish()
    nand2 = lib.cells["NAND2"]
    assert nand2.table == 0b0111
    mux2 = lib.cells["MUX2"]
    # inputs (a, b, s): out = s ? b : a
    for minterm in range(8):
        a, b, s = minterm & 1, (minterm >> 1) & 1, (minterm >> 2) & 1
        expected = b if s else a
        assert (mux2.table >> minterm) & 1 == expected


def test_flop_variants_ordered_by_complexity():
    lib = Library.tsmc90ish()
    plain = lib.flop_for("none")
    sync = lib.flop_for("sync")
    asynch = lib.flop_for("async")
    assert plain.area < sync.area < asynch.area


def test_drive_scaling():
    lib = Library.tsmc90ish()
    nand2 = lib.cells["NAND2"]
    assert nand2.area_at(1) < nand2.area_at(2) < nand2.area_at(4)
    # Higher drive reduces load-dependent delay.
    assert nand2.delay(4, 4) < nand2.delay(4, 1)
    # Zero fanout is treated as one.
    assert nand2.delay(0, 1) == nand2.delay(1, 1)


def test_library_validation():
    inv = Cell("INV", 1, 0b01, 1.0, 0.01, 0.01)
    flops = [
        FlopCell("DFF", "none", 10, 0.1, 0.05),
        FlopCell("DFFS", "sync", 11, 0.1, 0.05),
        FlopCell("DFFR", "async", 12, 0.1, 0.05),
    ]
    Library("ok", [inv], flops)
    with pytest.raises(ValueError):
        Library("noinv", [], flops)
    with pytest.raises(ValueError):
        Library("noflop", [inv], flops[:2])
