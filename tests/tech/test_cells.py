"""Unit tests for the standard cell library."""

import pytest

from repro.tech.cells import Cell, FlopCell, Library, _tt


def test_tt_helper():
    assert _tt(lambda a: a, 1) == 0b10
    assert _tt(lambda a, b: a and b, 2) == 0b1000
    assert _tt(lambda a, b: a or b, 2) == 0b1110


def test_default_library_has_core_cells():
    lib = Library.tsmc90ish()
    for name in ("INV", "NAND2", "NOR2", "XOR2", "MUX2", "AOI21"):
        assert name in lib.cells
    assert lib.inverter.name == "INV"


def test_cell_truth_tables_are_correct():
    lib = Library.tsmc90ish()
    nand2 = lib.cells["NAND2"]
    assert nand2.table == 0b0111
    mux2 = lib.cells["MUX2"]
    # inputs (a, b, s): out = s ? b : a
    for minterm in range(8):
        a, b, s = minterm & 1, (minterm >> 1) & 1, (minterm >> 2) & 1
        expected = b if s else a
        assert (mux2.table >> minterm) & 1 == expected


def test_flop_variants_ordered_by_complexity():
    lib = Library.tsmc90ish()
    plain = lib.flop_for("none")
    sync = lib.flop_for("sync")
    asynch = lib.flop_for("async")
    assert plain.area < sync.area < asynch.area


def test_drive_scaling():
    lib = Library.tsmc90ish()
    nand2 = lib.cells["NAND2"]
    assert nand2.area_at(1) < nand2.area_at(2) < nand2.area_at(4)
    # Higher drive reduces load-dependent delay.
    assert nand2.delay(4, 4) < nand2.delay(4, 1)
    # Zero fanout is treated as one.
    assert nand2.delay(0, 1) == nand2.delay(1, 1)


def test_registered_libraries_are_valid_and_distinct():
    """Every spec-addressable library builds, carries the mandatory
    cells/flops, and hashes apart from the others."""
    from repro.flow.passes import LIBRARY_FACTORIES

    hashes = {}
    for name, factory in LIBRARY_FACTORIES.items():
        lib = factory()
        assert lib.name == name
        assert "INV" in lib.cells
        for kind in ("none", "sync", "async"):
            assert lib.flop_for(kind) is not None
        hashes[name] = lib.canonical_hash()
        # Factories are deterministic: same content hash every build.
        assert factory().canonical_hash() == hashes[name]
    assert len(set(hashes.values())) == len(hashes)


def test_every_registered_library_maps_an_arbitrary_aig():
    """NAND2/NOR2/INV suffice to cover any AIG; every library must map
    totally *and* correctly (simulation crosscheck per library)."""
    import random

    from repro.aig.graph import AIG
    from repro.flow.passes import LIBRARY_FACTORIES
    from repro.tech.mapper import map_aig

    from tests.tech.test_mapper import crosscheck_netlist

    rng = random.Random(9)
    aig = AIG()
    pool = [aig.add_pi(f"x{i}") for i in range(5)]
    for _ in range(30):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    aig.add_po("f", pool[-1])
    aig.add_po("g", pool[-7] ^ 1)
    cleaned, _ = aig.cleanup()
    for name, factory in LIBRARY_FACTORIES.items():
        netlist = map_aig(cleaned, factory())
        assert netlist.area_report().num_cells > 0, name
        crosscheck_netlist(cleaned, netlist)


def test_lowpowerish_trades_delay_for_area():
    fast = Library.tsmc90ish()
    slow = Library.lowpowerish()
    assert set(slow.cells) == set(fast.cells)
    for name, cell in slow.cells.items():
        assert cell.area <= fast.cells[name].area
        assert cell.intrinsic > fast.cells[name].intrinsic


def test_default_library_factory_is_resolvable():
    from repro.tech import cells

    assert cells.default_library().name == "tsmc90ish"
    original = cells.DEFAULT_LIBRARY_FACTORY
    try:
        cells.DEFAULT_LIBRARY_FACTORY = Library.generic45ish
        assert cells.default_library().name == "generic45ish"
    finally:
        cells.DEFAULT_LIBRARY_FACTORY = original


def test_default_library_hash_memo_tracks_the_factory():
    from repro.tech import cells

    original = cells.DEFAULT_LIBRARY_FACTORY
    try:
        assert (
            cells.default_library_hash()
            == Library.tsmc90ish().canonical_hash()
        )
        cells.DEFAULT_LIBRARY_FACTORY = Library.generic45ish
        assert (
            cells.default_library_hash()
            == Library.generic45ish().canonical_hash()
        )
    finally:
        cells.DEFAULT_LIBRARY_FACTORY = original
    assert (
        cells.default_library_hash() == Library.tsmc90ish().canonical_hash()
    )


def test_library_validation():
    inv = Cell("INV", 1, 0b01, 1.0, 0.01, 0.01)
    flops = [
        FlopCell("DFF", "none", 10, 0.1, 0.05),
        FlopCell("DFFS", "sync", 11, 0.1, 0.05),
        FlopCell("DFFR", "async", 12, 0.1, 0.05),
    ]
    Library("ok", [inv], flops)
    with pytest.raises(ValueError):
        Library("noinv", [], flops)
    with pytest.raises(ValueError):
        Library("noflop", [inv], flops[:2])
