"""Unit tests for static timing analysis and gate sizing."""

import random

from repro.aig.graph import AIG
from repro.tech.mapper import map_aig
from repro.tech.sizing import achievable_targets, size_for_clock
from repro.tech.sta import analyze_timing

from tests.helpers import make_word


def build_chain(length=24):
    """A long AND chain: an easy critical path to study."""
    aig = AIG()
    xs = make_word(aig, "x", length)
    acc = xs[0]
    for lit in xs[1:]:
        acc = aig.and_(acc, lit)
    aig.add_po("f", acc)
    return aig


def test_arrival_times_monotone_along_path():
    netlist = map_aig(build_chain())
    report = analyze_timing(netlist)
    assert report.critical_delay > 0
    times = [report.arrival[net] for net in report.critical_path]
    assert times == sorted(times)


def test_sequential_paths_include_flop_margins():
    aig = AIG()
    a = aig.add_pi("a")
    q = aig.add_latch("q", reset_kind="sync")
    aig.set_latch_next(q, aig.and_(q, a))
    aig.add_po("o", q)
    netlist = map_aig(aig)
    report = analyze_timing(netlist)
    flop = netlist.flops[0]
    # Path must include clk-to-q and setup, so it exceeds the bare gate delay.
    gate = netlist.library.cells[netlist.instances[0].cell_name]
    assert report.critical_delay > gate.delay(1, 1)
    assert report.critical_delay >= flop.cell.clk_to_q + flop.cell.setup


def test_sizing_meets_loose_target_without_work():
    netlist = map_aig(build_chain())
    base = analyze_timing(netlist).critical_delay
    result = size_for_clock(netlist, base * 2)
    assert result.met
    assert result.upsized == 0


def test_sizing_improves_delay_at_area_cost():
    netlist = map_aig(build_chain(32))
    base_delay = analyze_timing(netlist).critical_delay
    base_area = netlist.area_report().total
    result = size_for_clock(netlist, base_delay * 0.8)
    after_delay = analyze_timing(netlist).critical_delay
    after_area = netlist.area_report().total
    assert after_delay < base_delay
    if result.upsized:
        assert after_area > base_area


def test_sizing_reports_unreachable_targets():
    netlist = map_aig(build_chain(16))
    result = size_for_clock(netlist, 0.0001)
    assert not result.met
    assert result.achieved_delay > 0.0001


def test_achievable_targets_descend():
    targets = achievable_targets(1.0, num_points=4)
    assert len(targets) == 4
    assert targets[0] > 1.0
    assert all(a > b for a, b in zip(targets, targets[1:]))


def test_sized_netlist_still_functionally_correct():
    rng = random.Random(4)
    aig = build_chain(12)
    netlist = map_aig(aig)
    size_for_clock(netlist, analyze_timing(netlist).critical_delay * 0.8)
    for _ in range(32):
        pis = {node: rng.getrandbits(1) for node in aig.pis}
        want, _ = aig.evaluate(pis)
        names = {n: pis[node] for n, node in zip(aig.pi_names, aig.pis)}
        got, _ = netlist.evaluate(names)
        assert got == want
