"""The sweep service layer of the drivers: parallel determinism,
cache reuse, and the --pipeline/--jobs CLI surface.

The acceptance bar: ``compile_many``-backed drivers produce
byte-identical ``ExperimentResult`` markdown whether the jobs run
serially, across workers, or out of a warm cache.
"""

import pytest

from repro.expts.__main__ import main
from repro.expts.fig6_fsm import run_fig6
from repro.flow import CompileCache


@pytest.fixture(scope="module")
def serial_fig6():
    return run_fig6(scale="small")


def test_fig6_parallel_is_byte_identical_to_serial(serial_fig6):
    parallel = run_fig6(scale="small", workers=2)
    assert parallel.to_markdown() == serial_fig6.to_markdown()


def test_fig6_warm_cache_runs_zero_compiles(tmp_path, serial_fig6):
    cache = CompileCache(tmp_path / "cache")
    cold = run_fig6(scale="small", cache=cache)
    assert cache.misses > 0 and cache.hits == 0
    warm_cache = CompileCache(tmp_path / "cache")
    warm = run_fig6(scale="small", cache=warm_cache)
    assert warm_cache.misses == 0  # zero synthesis compiles
    assert warm_cache.disk_hits == cache.misses
    assert warm.to_markdown() == cold.to_markdown() == serial_fig6.to_markdown()


def test_fig6_parallel_with_shared_cache_matches(tmp_path, serial_fig6):
    cache = CompileCache(tmp_path / "cache")
    first = run_fig6(scale="small", workers=2, cache=cache)
    second = run_fig6(scale="small", workers=2, cache=cache)
    assert cache.memory_hits > 0
    assert (
        first.to_markdown()
        == second.to_markdown()
        == serial_fig6.to_markdown()
    )


def test_fig6_pipeline_spec_override(serial_fig6):
    spec = (
        "fsm_infer,honour_annotations,encode,elaborate,optimize,"
        "state_folding,map,size{clock_period_ns=20.0}"
    )
    overridden = run_fig6(scale="small", pipeline=spec)
    # The spec above *is* the default fig6 flow, so results must match.
    assert overridden.to_markdown() == serial_fig6.to_markdown()


# ---------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------

def test_cli_jobs_and_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cli-cache"
    args = [
        "fig6", "--scale", "small", "--jobs", "2",
        "--cache-dir", str(cache_dir),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "misses" in first
    assert cache_dir.is_dir()
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "0 misses" in second


def test_cli_rejects_pipeline_for_unsupported_figures():
    with pytest.raises(SystemExit):
        main(["fig9", "--pipeline", "elaborate,map,size"])
    with pytest.raises(SystemExit):
        main(["all", "--pipeline", "elaborate,map,size"])


def test_cli_rejects_negative_jobs():
    with pytest.raises(SystemExit):
        main(["fig6", "--jobs", "-1"])


def test_cli_pipeline_override_runs(tmp_path, capsys):
    assert main([
        "fig6", "--scale", "small", "--no-cache",
        "--pipeline",
        "fsm_infer,honour_annotations,encode,elaborate,optimize,"
        "state_folding,map,size{clock_period_ns=20.0}",
    ]) == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
