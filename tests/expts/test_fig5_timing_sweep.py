"""The Fig. 5 timing-target sweep option (paper methodology)."""

from repro.expts.fig5_tables import run_fig5


def test_timing_sweep_adds_tight_series():
    result = run_fig5(scale="small", sweep_timing=True)
    relaxed = result.series("table-based")
    tight = result.series("table-based (tight)")
    assert relaxed
    assert tight, "at least some pairs must meet a common tight target"
    # Tight-target pairs can only be a subset of the relaxed pairs.
    assert len(tight) <= len(relaxed)
    # The equal-area shape holds at the tighter target as well.
    stats = result.ratio_stats("table-based (tight)")
    assert 0.6 <= stats.geomean <= 1.4
