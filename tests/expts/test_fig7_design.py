"""Unit tests for the Fig. 7 design builder."""

import pytest

from repro.expts.fig7_design import build_fig7, onehot_values
from repro.sim.rtlsim import Simulator


def test_validation():
    with pytest.raises(ValueError):
        build_fig7(3, "comb", direct=False)
    with pytest.raises(ValueError):
        build_fig7(4, "weird", direct=False)


def test_onehot_values():
    assert onehot_values(4) == (1, 2, 4, 8)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_generic_and_direct_agree_combinationally(n):
    """With y one-hot by construction, out == b in both versions."""
    generic = Simulator(build_fig7(n, "comb", direct=False))
    direct = Simulator(build_fig7(n, "comb", direct=True))
    for x in range(n):
        for b_value in (0, (1 << n) - 1, 0b1010 % (1 << n)):
            inputs = {"x": x, "a": (1 << n) - 1, "b": b_value}
            got = generic.step(inputs)
            want = direct.step(inputs)
            assert got["out"] == want["out"] == b_value
            assert got["y_out"] == want["y_out"] == 1 << x


def test_flopped_variant_registers_y():
    module = build_fig7(4, "plain", direct=False)
    assert "y" in module.regs
    assert module.regs["y"].reset_kind == "none"
    sim = Simulator(module)
    sim.step({"x": 2, "a": 0, "b": 0})
    out = sim.step({"x": 0, "a": 0, "b": 0})
    assert out["y_out"] == 1 << 2  # one cycle behind


def test_reset_styles():
    assert build_fig7(4, "sync", direct=False).regs["y"].reset_kind == "sync"
    assert build_fig7(4, "async", direct=False).regs["y"].reset_kind == "async"


def test_generic_mux_selects_a_on_non_onehot_state():
    """The generic logic is NOT redundant without the one-hot fact."""
    module = build_fig7(4, "plain", direct=False)
    sim = Simulator(module)
    sim.poke_reg("y", 0b0110)  # two adjacent bits: overlap fires
    out = sim.step({"x": 0, "a": 0xF, "b": 0x0})
    assert out["out"] == 0xF
