"""Tests for the ``python -m repro.expts`` command-line interface."""

import pytest

from repro.expts.__main__ import main


def test_cli_runs_fig8_small(tmp_path, capsys):
    out_file = tmp_path / "run.md"
    assert main(["fig8", "--scale", "small", "--out", str(out_file)]) == 0
    captured = capsys.readouterr().out
    assert "Fig. 8" in captured
    text = out_file.read_text()
    assert "Series summary" in text
    assert "equal-area line" in text


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        main(["fig8", "--scale", "enormous"])
