"""The traffic-replay benchmark: traces, phases, and the run store."""

import pytest

from repro.expts.replay import (
    REPLAY_FIGURE,
    build_trace,
    percentile,
    run_replay,
)
from repro.flow import CompileCache, diff_runs
from repro.flow.store import RunStore


@pytest.fixture(scope="module")
def replayed(tmp_path_factory):
    """One shared self-hosted replay (cold server, stored record)."""
    root = tmp_path_factory.mktemp("replay")
    result = run_replay(
        scale="small",
        workers=2,
        cache=CompileCache(),
        clients=2,
        jobs_per_client=3,
        store_dir=root / "runs",
        commit="replay-label",
    )
    return result, root


def test_percentile_is_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 50) == 20.0
    assert percentile(values, 99) == 40.0
    assert percentile(values, 0) == 10.0
    assert percentile([], 50) != percentile([], 50)  # NaN
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_trace_is_reproducible_and_keyed_uniquely():
    one = build_trace("small", clients=3, jobs_per_client=4, seed=5)
    two = build_trace("small", clients=3, jobs_per_client=4, seed=5)
    assert len(one) == 3 and all(len(batch) == 4 for batch in one)
    keys = [job.key for batch in one for job in batch]
    assert keys == [job.key for batch in two for job in batch]
    assert len(set(keys)) == 12  # unique across clients and slots
    # The sampled variants are real techsweep grid entries.
    assert all(len(job.key) == 5 for batch in one for job in batch)
    other = build_trace("small", clients=3, jobs_per_client=4, seed=6)
    assert keys != [job.key for batch in other for job in batch]


def test_trace_validates_shape():
    with pytest.raises(ValueError, match="clients"):
        build_trace(clients=0)
    with pytest.raises(ValueError, match="jobs_per_client"):
        build_trace(jobs_per_client=0)


def test_warm_phase_serves_everything_from_cache(replayed):
    result, _ = replayed
    [warm] = [p for p in result.series("hit_rate") if p.label == "warm"]
    assert warm.y == 100.0
    assert warm.meta["compiles"] == 0 and warm.meta["errors"] == 0
    [cold] = [p for p in result.series("hit_rate") if p.label == "cold"]
    assert cold.meta["compiles"] >= 1  # the cold phase really compiled
    assert cold.meta["jobs"] == 6
    assert any("warm: hit rate 100.0%" in note for note in result.notes)


def test_latency_points_and_meta_are_complete(replayed):
    result, _ = replayed
    for phase in ("cold", "warm"):
        labels = {p.label for p in result.series(f"latency_{phase}_ms")}
        assert labels == {"p50", "p99"}
        assert all(
            p.y >= 0 for p in result.series(f"latency_{phase}_ms")
        )
    assert result.meta["clients"] == 2
    assert result.meta["jobs_per_client"] == 3
    assert result.meta["server"] == "self-hosted"
    assert result.meta["libraries"]
    assert result.pass_totals  # warm contexts carried their records


def test_record_lands_in_the_run_store_and_diffs(replayed):
    result, root = replayed
    store = RunStore(root / "runs")
    record = store.get("replay-label", REPLAY_FIGURE)
    assert record is not None
    assert record.library  # guarded on the swept libraries' digest
    restored = {(p.series, p.label) for p in record.result.points}
    assert restored == {(p.series, p.label) for p in result.points}

    # `track diff` accepts replay records like any other figure: a
    # self-diff is clean, and the latency series participate.
    diff = diff_runs(record, record)
    assert diff.identical
    assert not diff.area_regressions(1.0)


def test_track_cli_diffs_replay_records(replayed, capsys):
    _, root = replayed
    from repro.track import main

    code = main(
        [
            "diff", "replay-label", "replay-label",
            "--store-dir", str(root / "runs"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "replay" in out
