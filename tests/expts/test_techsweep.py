"""The techsweep driver: pipelines x libraries, caching, run store."""

import pytest

from repro.expts.techsweep import (
    RECIPES,
    REFERENCE_LIBRARY,
    run_techsweep,
    variant_spec,
)
from repro.flow import CompileCache, PassManager
from repro.flow.passes import registered_library_names
from repro.flow.store import RunStore


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One shared cold run (plus its cache and store directories)."""
    root = tmp_path_factory.mktemp("techsweep")
    cache = CompileCache(root / "cache")
    result = run_techsweep(
        scale="small",
        workers=1,
        cache=cache,
        store_dir=root / "runs",
        commit="test-label",
    )
    return result, cache, root


def test_covers_at_least_two_libraries_and_two_recipes(sweep):
    result, _, _ = sweep
    libraries = set(result.meta["libraries"])
    assert len(libraries) >= 2
    assert len(result.meta["recipes"]) >= 2
    assert libraries == set(registered_library_names())
    # Every (library) series got points, and each point carries a
    # recipe tag and its sizing outcome.
    for library in libraries:
        points = result.series(library)
        assert points
        recipes = {p.meta["recipe"] for p in points}
        assert recipes == set(RECIPES)
        assert all("critical_delay" in p.meta for p in points)


def test_reference_series_ratio_is_one(sweep):
    result, _, _ = sweep
    stats = result.ratio_stats(REFERENCE_LIBRARY)
    assert stats.count > 0
    assert stats.geomean == pytest.approx(1.0)


def test_persists_a_run_store_record(sweep):
    result, _, root = sweep
    record = RunStore(root / "runs").get("test-label", "techsweep")
    assert record is not None
    assert record.figure == "techsweep"
    assert len(record.result.points) == len(result.points)
    assert record.result.meta["libraries"] == result.meta["libraries"]
    assert record.result.pass_totals  # per-pass instrumentation rode along
    assert "resub" in record.result.pass_totals
    assert "dc_rewrite" in record.result.pass_totals


def test_warm_rerun_performs_zero_compiles(sweep):
    result, cache, root = sweep
    before_stores = cache.stores
    warm = run_techsweep(
        scale="small",
        workers=1,
        cache=cache,
        store_dir=root / "runs",
        commit="test-label",
    )
    assert cache.stores == before_stores  # nothing recompiled
    # Identical payload: cached contexts replay the same records.
    assert [p.to_json() for p in warm.points] == [
        p.to_json() for p in result.points
    ]
    assert warm.tables == result.tables


def test_variant_specs_round_trip():
    for recipe in RECIPES.values():
        for library in registered_library_names():
            spec = variant_spec("table_rom", recipe, library, 20.0)
            assert PassManager.parse(spec).spec() == spec
            assert f"map{{library={library}}}" in spec


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        run_techsweep(scale="huge")


def test_record_library_hash_covers_every_swept_library(sweep, monkeypatch):
    """Editing any registered kit -- not just the default -- must
    change the stored library hash, or diff_runs' library guard would
    misread cross-library edits as area regressions."""
    from repro.expts.techsweep import swept_libraries_hash
    from repro.flow import passes
    from repro.tech.cells import Library

    result, _, root = sweep
    libraries = tuple(result.meta["libraries"])
    record = RunStore(root / "runs").get("test-label", "techsweep")
    assert record.library == swept_libraries_hash(libraries)
    # A tweak to a *non-default* library changes the combined hash.
    def tweaked_generic45ish():
        from dataclasses import replace

        lib = Library.generic45ish()
        inv = lib.cells["INV"]
        lib.cells["INV"] = replace(inv, area=inv.area * 2)
        return lib

    monkeypatch.setitem(
        passes.LIBRARY_FACTORIES, "generic45ish", tweaked_generic45ish
    )
    assert swept_libraries_hash(libraries) != record.library


def test_dirty_worktree_records_under_suffixed_commit(tmp_path, monkeypatch):
    """A default-commit record from a dirty checkout is keyed
    `<sha>-dirty`, never as the clean commit itself."""
    import repro.track as track

    monkeypatch.setattr(track, "resolve_ref", lambda ref: "a" * 40)
    monkeypatch.setattr(track, "worktree_dirty", lambda: True)
    run_techsweep(
        scale="small",
        cache=CompileCache(tmp_path / "cache"),
        store_dir=tmp_path / "runs",
        libraries=("tsmc90ish", "generic45ish"),
    )
    store = RunStore(tmp_path / "runs")
    assert store.get("a" * 40 + "-dirty", "techsweep") is not None
    assert store.get("a" * 40, "techsweep") is None


def test_no_store_flag_skips_the_record(tmp_path):
    from repro.expts.__main__ import main as expts_main

    store = tmp_path / "runs"
    code = expts_main(
        [
            "techsweep",
            "--no-store",
            "--store-dir", str(store),
            "--cache-dir", str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    assert not store.exists()
