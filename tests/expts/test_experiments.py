"""Integration tests: tiny-scale runs of every figure driver.

These execute the same code paths as the benchmark/EXPERIMENTS runs
and assert the *shape* properties that define a successful
reproduction.
"""

import pytest

from repro.expts.fig5_tables import Fig5Scale, run_fig5
from repro.expts.fig6_fsm import Fig6Scale, run_fig6
from repro.expts.fig8_stateprop import Fig8Scale, run_fig8


def test_scales_exist():
    for cls in (Fig5Scale, Fig6Scale, Fig8Scale):
        for name in ("small", "medium", "paper"):
            assert cls.named(name)
        with pytest.raises(ValueError):
            cls.named("giant")


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(scale="small")


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(scale="small")


@pytest.fixture(scope="module")
def fig8():
    return run_fig8(scale="small")


def test_fig5_points_cluster_on_equal_area_line(fig5):
    stats = fig5.ratio_stats("table-based")
    assert stats.count >= 9
    # Partial evaluation makes the table style competitive: the
    # geomean ratio sits near 1 and no point is wildly off the line.
    assert 0.7 <= stats.geomean <= 1.3
    assert stats.maximum <= 2.0
    assert stats.minimum >= 0.5


def test_fig5_produces_tables_and_scatter(fig5):
    assert "Scatter" in fig5.tables
    assert "Area per design pair (um^2)" in fig5.tables
    assert "geomean" in fig5.to_markdown()


def test_fig6_annotation_tightens_variance(fig6):
    regular = fig6.ratio_stats("regular")
    annotated = fig6.ratio_stats("state annotated")
    assert regular.count == annotated.count >= 6
    # Annotated tables track the case style at least as tightly as the
    # unannotated ones, and stay within a tight band of it.
    assert annotated.log_spread <= regular.log_spread + 0.05
    assert annotated.maximum <= max(regular.maximum, 1.3)


def test_fig8_shape(fig8):
    comb = fig8.ratio_stats("comb/regular")
    assert comb.maximum <= 1.01  # combinational: always ideal
    plain = fig8.ratio_stats("plain/regular")
    assert plain.minimum >= 1.1  # flops block state propagation
    annotated = fig8.ratio_stats("plain/annotated")
    assert annotated.maximum <= 1.01  # annotation recovers the ideal
    async_retimed = fig8.ratio_stats("async/retimed")
    assert async_retimed.minimum >= 1.1  # zero-reset bank cannot move
    plain_retimed = fig8.ratio_stats("plain/retimed")
    assert plain_retimed.minimum <= 1.01  # retiming helps sometimes
    assert plain_retimed.maximum >= 1.1  # ... but not consistently
