"""The prefixgrid cold-grid benchmark and the track report CLI."""

import pytest

from repro.expts.prefixgrid import executed_records, run_prefixgrid
from repro.flow.store import RunStore
from repro.track import main
from repro.track.report import GAP, SPARK, build_report, sparkline


# ---------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def grid_result():
    # One library keeps the module fast; cross-recipe prefix sharing
    # alone must already carry the win.
    return run_prefixgrid(scale="small", libraries=("tsmc90ish",))


def test_prefix_phase_executes_meaningfully_less(grid_result):
    meta = grid_result.meta
    assert meta["prefix_executed"] < meta["baseline_executed"]
    # Full grids measure ~3.7x; a single library shares only the
    # per-design frontend + elaborate,optimize prefix, so the bar is
    # lower -- but the win must still be structural, not noise.
    assert meta["execution_ratio"] > 1.2


def test_result_shape_and_meta(grid_result):
    assert set(grid_result.series_names()) == {"baseline", "prefix"}
    baseline = grid_result.series("baseline")
    prefix = grid_result.series("prefix")
    assert len(baseline) == len(prefix) > 0
    # Baseline executed everything: every ratio is exactly 1.
    assert all(p.ratio == 1.0 for p in baseline)
    assert all(p.ratio <= 1.0 for p in prefix)
    for key in (
        "baseline_executed", "prefix_executed", "execution_ratio",
        "libraries", "recipes", "clock_period_ns",
    ):
        assert key in grid_result.meta
    # The absorb_flow accounting saw the resumed compiles.
    assert grid_result.meta["prefix_hits"] > 0
    assert grid_result.meta["prefix_passes_skipped"] > 0
    assert any("byte-identical" in note for note in grid_result.notes)


def test_executed_records_reads_resume_provenance():
    class Ctx:
        records = list(range(10))
        meta = {"resumed_records": 4}

    assert executed_records(Ctx()) == 6
    Ctx.meta = {}
    assert executed_records(Ctx()) == 10


def test_store_record_roundtrip(tmp_path):
    result = run_prefixgrid(
        scale="small",
        libraries=("tsmc90ish",),
        store_dir=tmp_path,
        commit="prefix-test",
    )
    record = RunStore(tmp_path).get("prefix-test", "prefixgrid")
    assert record is not None
    assert record.result.meta["execution_ratio"] == pytest.approx(
        result.meta["execution_ratio"]
    )
    assert record.scale == "small"


# ---------------------------------------------------------------------
# Sparklines + the report CLI.
# ---------------------------------------------------------------------

def test_sparkline_normalises_within_the_row():
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == SPARK[0] and line[-1] == SPARK[-1]
    assert len(line) == 4


def test_sparkline_constant_and_missing_values():
    assert sparkline([5.0, 5.0, 5.0]) == SPARK[len(SPARK) // 2] * 3
    line = sparkline([1.0, None, 3.0])
    assert line[1] == GAP
    assert sparkline([None, None]) == GAP * 2
    assert sparkline([]) == ""


def test_report_renders_trends_and_prefix_counters(tmp_path, capsys):
    store_dir = str(tmp_path / "runs")
    run_prefixgrid(
        scale="small",
        libraries=("tsmc90ish",),
        store_dir=store_dir,
        commit="trend-a",
    )
    run_prefixgrid(
        scale="small",
        libraries=("tsmc90ish",),
        store_dir=store_dir,
        commit="trend-b",
    )
    assert main(["report", "--store-dir", store_dir]) == 0
    out = capsys.readouterr().out
    assert "last 2 recorded commit(s)" in out
    assert "`trend-a`" in out and "`trend-b`" in out
    assert "## prefixgrid" in out
    assert "| baseline |" in out and "| prefix |" in out
    assert "pass wall time (s)" in out
    assert "prefix resumes:" in out


def test_report_figure_filter_and_out_file(tmp_path, capsys):
    store_dir = str(tmp_path / "runs")
    run_prefixgrid(
        scale="small",
        libraries=("tsmc90ish",),
        store_dir=store_dir,
        commit="only",
    )
    out_file = tmp_path / "trends.md"
    assert main([
        "report", "--store-dir", store_dir,
        "--figure", "prefixgrid", "--out", str(out_file),
    ]) == 0
    text = out_file.read_text()
    assert "## prefixgrid" in text
    # An unknown figure filter reports the gap instead of crashing.
    report = build_report(
        RunStore(store_dir), figures=["no-such-figure"]
    )
    assert "no records for figure(s) no-such-figure" in report


def test_report_on_empty_store(tmp_path, capsys):
    assert main(["report", "--store-dir", str(tmp_path / "empty")]) == 0
    assert "empty" in capsys.readouterr().out
