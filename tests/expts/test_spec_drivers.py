"""The spec-string drivers vs the pre-refactor module-building route.

The acceptance bar of the frontend-as-passes refactor: the figure
drivers, now one spec string from controller IR to sized netlist,
must produce *byte-identical* measurement payloads to the old drivers
that built RTL modules by hand -- and a warm cache must perform zero
lowerings and zero synthesis compiles.
"""

import json
import random

import pytest

from repro.controllers.fsm_random import random_fsm
from repro.expts.fig5_tables import Fig5Scale, run_fig5
from repro.expts.fig6_fsm import Fig6Scale, run_fig6
from repro.flow import CompileCache, PassManager, optimize_loop, state_folding
from repro.flow.passes import (
    ElaboratePass,
    EncodePass,
    FsmInferPass,
    HonourAnnotationsPass,
    SizePass,
    TechMapPass,
)
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import StateAnnotation
from repro.tables.rtl import table_to_rom_rtl, table_to_sop_rtl
from repro.tables.truthtable import TruthTable


@pytest.fixture(scope="module")
def library():
    return DesignCompiler().library


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(scale="small")


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(scale="small")


def test_fig5_payload_matches_the_pre_refactor_route(fig5_result, library):
    """Every point of the IR-driven fig5 equals a by-hand compile of
    the pre-refactor modules through the pre-refactor pipeline."""
    reference = PassManager(
        [ElaboratePass(), optimize_loop(), TechMapPass(), SizePass(20.0)]
    )
    assert fig5_result.meta["pipeline"] == reference.spec()
    config = Fig5Scale.named("small")
    expected_pairs = len(config.depths) * len(config.widths) * len(config.seeds)
    assert 0 < len(fig5_result.points) <= expected_pairs
    for point in fig5_result.points:
        depth, width, seed = (
            point.meta["depth"], point.meta["width"], point.meta["seed"],
        )
        rng = random.Random(hash((depth, width, seed)) & 0xFFFFFFFF)
        table = TruthTable.random((depth - 1).bit_length(), width, rng)
        table_ctx = reference.compile(
            table_to_rom_rtl(table, f"tbl_{point.label}"), library=library
        )
        sop_ctx = reference.compile(
            table_to_sop_rtl(table, f"sop_{point.label}"), library=library
        )
        assert point.y == table_ctx.area.combinational
        assert point.x == sop_ctx.area.combinational
        # The persisted timing is the sizing step's, bit for bit.
        assert point.meta["critical_delay"] == (
            table_ctx.timing.critical_delay
        )
        assert point.meta["met"] == table_ctx.sizing.met


def test_fig6_payload_matches_the_pre_refactor_route(fig6_result, library):
    reference = PassManager(
        [
            FsmInferPass(),
            HonourAnnotationsPass(),
            EncodePass("binary"),
            ElaboratePass(),
            optimize_loop(),
            state_folding(),
            TechMapPass(),
            SizePass(20.0),
        ]
    )
    assert fig6_result.meta["pipeline"] == reference.spec()
    from repro.controllers.fsm_rtl import fsm_to_case_rtl, fsm_to_table_rtl

    config = Fig6Scale.named("small")
    per_machine = len(config.inputs) * len(config.outputs) \
        * len(config.states) * len(config.seeds)
    assert len(fig6_result.points) == 2 * per_machine
    seen = set()
    for point in fig6_result.points:
        m, n, s = point.meta["m"], point.meta["n"], point.meta["s"]
        if (m, n, s, point.label) in seen:
            continue  # case-side compile shared between the series
        seen.add((m, n, s, point.label))
        seed = int(point.label.rsplit("x", 1)[1])
        rng = random.Random(hash((m, n, s, seed)) & 0xFFFFFFFF)
        spec = random_fsm(m, n, s, rng)
        case_ctx = reference.compile(fsm_to_case_rtl(spec), library=library)
        assert point.x == case_ctx.area.total
        table_module = fsm_to_table_rtl(spec)
        annotations = (
            [StateAnnotation("state", tuple(range(s)))]
            if point.series == "state annotated"
            else []
        )
        treat_ctx = reference.compile(
            table_module, annotations=annotations, library=library
        )
        assert point.y == treat_ctx.area.total


def test_fig8_pipelines_round_trip_as_specs():
    """fig8's three treatment pipelines are spec strings that parse
    back to exactly the pre-refactor pass objects."""
    from repro.expts.fig8_stateprop import run_fig8  # noqa: F401
    from repro.flow import retime_stage

    objects = {
        "regular": PassManager(
            [ElaboratePass(), optimize_loop(), TechMapPass(), SizePass(20.0)]
        ),
        "retimed": PassManager(
            [
                ElaboratePass(fold_sync_reset=True),
                optimize_loop(),
                retime_stage(),
                TechMapPass(),
                SizePass(20.0),
            ]
        ),
        "annotated": PassManager(
            [
                HonourAnnotationsPass(),
                ElaboratePass(),
                optimize_loop(),
                state_folding(),
                TechMapPass(),
                SizePass(20.0),
            ]
        ),
    }
    for name, pipeline in objects.items():
        spec = pipeline.spec()
        assert PassManager.parse(spec).spec() == spec


def test_fig5_warm_cache_zero_lowerings_zero_compiles(tmp_path, monkeypatch):
    """Acceptance: re-running a figure out of a warm cache executes no
    lowering and no synthesis, and reproduces the stored result
    byte-for-byte (wall times included -- records replay)."""
    cache = CompileCache(tmp_path / "cache")
    cold = run_fig5(scale="small", cache=cache)
    assert cache.misses > 0

    import repro.flow.frontend as frontend
    import repro.flow.passes as passes

    def boom(*args, **kwargs):
        raise AssertionError("warm run executed a lowering/compile")

    monkeypatch.setattr(frontend, "table_to_rom_rtl", boom)
    monkeypatch.setattr(frontend, "table_to_sop_rtl", boom)
    monkeypatch.setattr(passes, "elaborate", boom)
    monkeypatch.setattr(passes, "map_aig", boom)

    warm_cache = CompileCache(tmp_path / "cache")
    warm = run_fig5(scale="small", cache=warm_cache)
    assert warm_cache.misses == 0 and warm_cache.stores == 0
    assert json.dumps(warm.to_json(), sort_keys=True) == json.dumps(
        cold.to_json(), sort_keys=True
    )


def test_fig6_timing_meta_is_persisted(fig6_result):
    for point in fig6_result.points:
        assert point.meta["critical_delay"] > 0
        assert isinstance(point.meta["met"], bool)
