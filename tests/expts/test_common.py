"""Unit tests for experiment infrastructure."""

import math

import pytest

from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    RatioStats,
    format_table,
)
from repro.expts.scatter import render_scatter


def test_point_ratio():
    point = ExperimentPoint("s", 10.0, 15.0)
    assert point.ratio == 1.5
    with pytest.raises(ValueError):
        ExperimentPoint("s", 0.0, 1.0).ratio


def test_ratio_stats_geomean():
    stats = RatioStats.of([0.5, 2.0])
    assert math.isclose(stats.geomean, 1.0)
    assert stats.minimum == 0.5
    assert stats.maximum == 2.0
    assert stats.count == 2


def test_ratio_stats_empty():
    stats = RatioStats.of([])
    assert stats.count == 0
    assert math.isnan(stats.geomean)


def test_result_series_and_markdown():
    result = ExperimentResult("Test", "desc")
    result.points.append(ExperimentPoint("a", 1.0, 2.0))
    result.points.append(ExperimentPoint("b", 1.0, 1.0))
    result.tables["T"] = "x y"
    result.notes.append("a note")
    text = result.to_markdown()
    assert "### Test" in text
    assert "a note" in text
    assert "| a | 1 | 2.000" in text
    assert result.series_names() == ["a", "b"]


def test_format_table_alignment():
    table = format_table(["col", "x"], [["1", "22"], ["333", "4"]])
    lines = table.splitlines()
    assert lines[0].startswith("col")
    assert len(lines) == 4


def test_scatter_renders_points_and_diagonal():
    points = [
        ExperimentPoint("alpha", 10.0, 10.0),
        ExperimentPoint("beta", 100.0, 300.0),
    ]
    text = render_scatter(points, width=40, height=12, title="demo")
    assert "demo" in text
    assert "=" in text
    assert "alpha" in text and "beta" in text


def test_scatter_empty():
    assert render_scatter([]) == "(no points)"
