"""Tests for the ``python -m repro.track`` command-line interface."""

import json

import pytest

from repro.flow import PASS_REGISTRY
from repro.track import main, resolve_ref
from repro.track.bench import run_pass_bench


@pytest.fixture()
def dirs(tmp_path):
    return {
        "store": str(tmp_path / "runs"),
        "cache": str(tmp_path / "cache"),
    }


def _record_fig5(dirs, commit="HEAD"):
    return main([
        "record", "fig5", "--scale", "small",
        "--commit", commit,
        "--store-dir", dirs["store"], "--cache-dir", dirs["cache"],
    ])


def test_record_then_self_diff_is_identical(dirs, capsys):
    assert _record_fig5(dirs) == 0
    first = capsys.readouterr().out
    assert "recorded 12 point(s)" in first
    assert "24 misses, 24 stores" in first

    # Re-record at the same commit: served entirely from the cache...
    assert _record_fig5(dirs) == 0
    second = capsys.readouterr().out
    assert "0 misses, 0 stores" in second

    # ...so HEAD diffed against itself reports zero deltas.
    assert main(["diff", "HEAD", "HEAD", "--store-dir", dirs["store"]]) == 0
    out = capsys.readouterr().out
    assert "identical: no point or pass deltas" in out


def test_injected_regression_fails_the_diff(dirs, capsys):
    from repro.flow.store import RunStore

    assert _record_fig5(dirs, commit="base") == 0
    store = RunStore(dirs["store"])
    entry = store.record_file(resolve_ref("base"), "fig5")
    data = json.loads(entry.read_text())
    data["commit"] = "hacked"
    data["result"]["points"][0]["y"] *= 1.5           # +50% area
    data["result"]["pass_totals"]["optimize"]["wall_time_s"] *= 3.0
    store.record_file("hacked", "fig5").parent.mkdir(
        parents=True, exist_ok=True
    )
    store.record_file("hacked", "fig5").write_text(json.dumps(data))
    capsys.readouterr()

    base = resolve_ref("base")
    args = [base, "hacked", "--store-dir", dirs["store"]]
    assert main(["diff", *args]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "<<" in out

    # Warn-only reports but exits clean (the CI soft-launch mode).
    assert main(["diff", *args, "--warn-only"]) == 0
    # Loose thresholds pass outright.
    assert main([
        "diff", *args, "--max-area-pct", "60", "--max-time-pct", "500",
    ]) == 0


def test_diff_against_missing_baseline(dirs, capsys):
    assert _record_fig5(dirs, commit="only") == 0
    capsys.readouterr()
    args = ["nothere", "only", "--store-dir", dirs["store"]]
    assert main(["diff", *args]) == 0
    assert "no record at nothere" in capsys.readouterr().out
    assert main(["diff", *args, "--strict"]) == 2

    empty = ["a", "b", "--store-dir", dirs["store"] + "-empty"]
    assert main(["diff", *empty]) == 0
    assert "no records" in capsys.readouterr().out
    assert main(["diff", *empty, "--strict"]) == 2


def test_list_shows_recorded_runs(dirs, capsys):
    assert _record_fig5(dirs, commit="label0") == 0
    capsys.readouterr()
    assert main(["list", "--store-dir", dirs["store"]]) == 0
    out = capsys.readouterr().out
    assert "label0" in out and "fig5" in out and "12 point(s)" in out


def test_gc_requires_a_bound(dirs, capsys):
    assert main(["gc", "--cache-dir", dirs["cache"]]) == 2
    assert _record_fig5(dirs) == 0
    capsys.readouterr()
    assert main([
        "gc", "--cache-dir", dirs["cache"], "--max-bytes", "0",
    ]) == 0
    assert "swept 24/24" in capsys.readouterr().out


def test_record_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["record", "fig99"])


def test_gc_rejects_negative_bounds(dirs, capsys):
    for flags in (["--max-bytes", "-1"], ["--max-age-days", "-2"]):
        with pytest.raises(SystemExit):
            main(["gc", "--cache-dir", dirs["cache"], *flags])
        assert ">= 0" in capsys.readouterr().err


def test_diff_accepts_bench_alias_for_figure(dirs, capsys):
    """``--figure bench`` must hit the stored ``bench_passes`` record,
    not silently skip an unknown figure name."""
    from repro.flow.store import RunStore
    from repro.track.bench import store_bench_record

    contexts = _tiny_contexts()
    store_bench_record(contexts, dirs["store"], commit="c0")
    store_bench_record(contexts, dirs["store"], commit="c1")
    assert main([
        "diff", "c0", "c1", "--figure", "bench",
        "--store-dir", dirs["store"],
    ]) == 0
    out = capsys.readouterr().out
    assert "bench_passes" in out and "no record" not in out
    # The stored shape matches `track record bench` (library included).
    assert RunStore(dirs["store"]).get("c0", "bench_passes").library


def _tiny_contexts():
    from repro.flow import PassManager
    from repro.track.bench import build_table_aig

    aig = build_table_aig(num_inputs=3, width=2)
    return [PassManager.parse("tt_sweep,balance").compile(aig=aig)]


def test_resolve_ref_passes_labels_through():
    assert resolve_ref("not-a-real-ref-label") == "not-a-real-ref-label"


def test_run_pass_bench_covers_the_registry():
    result = run_pass_bench()
    assert set(PASS_REGISTRY) <= set(result.pass_totals)
    assert all(t.calls >= 1 for t in result.pass_totals.values())
    assert "pipelines" in result.meta


def test_injected_delay_regression_gates_only_when_asked(dirs, capsys):
    from repro.flow.store import RunStore

    assert _record_fig5(dirs, commit="base") == 0
    store = RunStore(dirs["store"])
    entry = store.record_file(resolve_ref("base"), "fig5")
    data = json.loads(entry.read_text())
    data["commit"] = "slower"
    # +30% achieved delay and a missed target; areas untouched.
    meta = data["result"]["points"][0]["meta"]
    meta["critical_delay"] *= 1.3
    meta["met"] = False
    store.record_file("slower", "fig5").parent.mkdir(
        parents=True, exist_ok=True
    )
    store.record_file("slower", "fig5").write_text(json.dumps(data))
    capsys.readouterr()

    base = resolve_ref("base")
    args = [base, "slower", "--store-dir", dirs["store"]]
    # Without the gate the delay change is reported but not blocking.
    assert main(["diff", *args]) == 0
    assert "delay" in capsys.readouterr().out
    # The gate flags the grown delay (and the lost closure)...
    assert main(["diff", *args, "--max-delay-pct", "10"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "delay > 10.0%" in out
    # ...and a met->missed point regresses at any percentage.
    assert main(["diff", *args, "--max-delay-pct", "1000"]) == 1
