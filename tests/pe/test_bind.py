"""Unit tests for configuration binding."""

import random

import pytest

from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import fsm_to_table_rtl, table_rows
from repro.pe.bind import bind_tables
from repro.rtl.builder import ModuleBuilder
from repro.sim.rtlsim import Simulator


def test_bind_replaces_config_with_rom():
    b = ModuleBuilder("flex")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 4, 4)
    b.output("data", mem.read(addr))
    flexible = b.build()

    bound = bind_tables(flexible, {"tbl": [7, 3, 9]})
    assert not bound.memories["tbl"].writable
    assert bound.memories["tbl"].contents == [7, 3, 9]
    assert "tbl_we" not in bound.inputs
    sim = Simulator(bound)
    assert sim.step({"addr": 0})["data"] == 7
    assert sim.step({"addr": 3})["data"] == 0  # zero-extended


def test_bind_validates():
    b = ModuleBuilder("flex")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 4, 4)
    rom = b.rom("fixed", 4, 4, [1, 2, 3, 4])
    b.output("data", mem.read(addr) ^ rom.read(addr))
    flexible = b.build()
    with pytest.raises(ValueError, match="unknown memory"):
        bind_tables(flexible, {"ghost": [0]})
    with pytest.raises(ValueError, match="already bound"):
        bind_tables(flexible, {"fixed": [0]})
    with pytest.raises(ValueError, match="exceed"):
        bind_tables(flexible, {"tbl": [0] * 5})


def test_bind_detects_dangling_write_port_use():
    b = ModuleBuilder("flex")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 4, 4)
    we = b.input("user_we")  # a legitimate separate input
    del we
    # Illegitimate: an output that reads the write-enable port.
    from repro.rtl.ast import InputRef

    b.output("leak", InputRef("tbl_we", 1))
    b.output("data", mem.read(addr))
    flexible = b.build()
    with pytest.raises(ValueError, match="dangling"):
        bind_tables(flexible, {"tbl": [0]})


def test_bound_fsm_equals_programmed_flexible():
    """bind_tables(flex, contents) == fsm_to_table_rtl(spec, bound)."""
    spec = random_fsm(2, 3, 5, random.Random(77))
    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = bind_tables(
        flexible,
        {
            "next_mem": table_rows(spec, "next"),
            "out_mem": table_rows(spec, "output"),
        },
    )
    reference = fsm_to_table_rtl(spec, flexible=False)
    sim_a = Simulator(bound)
    sim_b = Simulator(reference)
    rng = random.Random(5)
    for _ in range(100):
        word = rng.getrandbits(2)
        assert sim_a.step({"in": word}) == sim_b.step({"in": word})


def test_partial_binding_keeps_other_memories_flexible():
    b = ModuleBuilder("flex")
    addr = b.input("addr", 2)
    m1 = b.config_mem("t1", 4, 4)
    m2 = b.config_mem("t2", 4, 4)
    b.output("d1", m1.read(addr))
    b.output("d2", m2.read(addr))
    flexible = b.build()
    bound = bind_tables(flexible, {"t1": [1, 2, 3, 4]})
    assert not bound.memories["t1"].writable
    assert bound.memories["t2"].writable
    assert "t2_we" in bound.inputs
