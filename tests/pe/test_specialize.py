"""Unit tests for the Auto/Manual specialization drivers.

The miniature version of the paper's Fig. 9 methodology, on a
sequencer small enough for unit tests: Full vs Auto vs Manual.
"""

import pytest

from repro.controllers.assembler import Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.controllers.sequencer import SequencerSpec, generate_sequencer
from repro.pe.annotations import derive_annotations, onehot_annotation
from repro.pe.specialize import specialize, specialize_manual
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import CompileOptions


def make_sequencer_pair():
    """A flexible sequencer and a program with a rarely-used path."""
    fmt = MicrocodeFormat.horizontal(
        ("cmd", ["read", "write", "sync"]),
        ("unit", ["p0", "p1"]),
    )
    table = DispatchTable("d", opcode_bits=2, default="idle")
    table.set(1, "short")
    table.set(2, "long")
    prog = Program(fmt, conditions=["go"])
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    prog.label("short")
    prog.inst(cmd="read", unit="p0", seq=SeqOp.JUMP, target="idle")
    prog.label("long")
    prog.inst(cmd="read", unit="p0")
    prog.inst(cmd="read", unit="p1")
    prog.inst(cmd="sync", unit="p0")
    prog.inst(cmd="write", unit="p1", seq=SeqOp.JUMP, target="idle")
    image = prog.assemble(addr_bits=3, dispatch=table)

    flex_spec = SequencerSpec(
        "seq", fmt, addr_bits=3, num_conditions=1, opcode_bits=2,
        flexible=True,
    )
    flexible = generate_sequencer(flex_spec).module
    return flexible, image


def test_auto_removes_all_config_storage():
    flexible, image = make_sequencer_pair()
    compiler = DesignCompiler()
    full = compiler.compile(flexible)
    auto = specialize(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
        compiler=compiler,
    )
    # Full keeps the table storage: many flops.  Auto keeps only uPC.
    assert full.area.sequential > 8 * auto.area.sequential
    assert auto.area.combinational < full.area.combinational
    # uPC register: 3 flops.
    assert auto.netlist.area_report().num_flops == 3


def test_manual_beats_auto_when_paths_are_pinned():
    flexible, image = make_sequencer_pair()
    compiler = DesignCompiler()
    bindings = {
        "ucode": image.instruction_words(),
        "dispatch": image.dispatch_rows(),
    }
    auto = specialize(flexible, bindings, compiler=compiler)
    # Manual: only opcode 1 (the short path) ever arrives.
    from repro.synth.dc_options import StateAnnotation

    reachable = image.reachable_addresses(opcodes=[0, 1])
    manual = specialize_manual(
        flexible,
        bindings,
        pinned={"op": 1},
        extra_annotations=[StateAnnotation("upc", reachable)],
        compiler=compiler,
    )
    assert manual.area.total < auto.area.total


def test_specialized_design_behaves_like_program():
    flexible, image = make_sequencer_pair()
    result = specialize(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
    )
    from repro.sim.crosscheck import NetlistSim

    sim = NetlistSim(result.netlist)
    fmt = image.format
    read = fmt.field("cmd").values["read"]
    write = fmt.field("cmd").values["write"]
    sync = fmt.field("cmd").values["sync"]
    sim.step_words({"op": 2})  # dispatch to 'long'
    cmds = [sim.step_words({"op": 0})["ctl_cmd"] for _ in range(4)]
    assert cmds == [read, read, sync, write]


def test_derive_annotations_on_bound_design():
    flexible, image = make_sequencer_pair()
    from repro.pe.bind import bind_tables

    bound = bind_tables(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
    )
    annotations = derive_annotations(bound)
    by_reg = {a.reg_name: a for a in annotations}
    assert "upc" in by_reg
    assert by_reg["upc"].values == (0, 1, 2, 3, 4, 5)


def test_derive_annotations_unknown_reg():
    flexible, _ = make_sequencer_pair()
    with pytest.raises(ValueError):
        derive_annotations(flexible, ["ghost"])


def test_onehot_annotation():
    annotation = onehot_annotation("y", 4)
    assert annotation.values == (1, 2, 4, 8)


def test_options_are_threaded_through():
    flexible, image = make_sequencer_pair()
    result = specialize(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
        options=CompileOptions(clock_period_ns=7.5),
    )
    assert result.options.clock_period_ns == 7.5
    # Derived annotation is present in the honoured list.
    assert any(a.reg_name == "upc" for a in result.honoured_annotations)
