"""Unit tests for the cycle-accurate RTL simulator."""

import pytest

from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.sim.rtlsim import Simulator


def build_counter(width=4):
    b = ModuleBuilder("counter")
    en = b.input("en")
    count = b.reg("count", width)
    b.drive(count, mux(en[0].eq(1), count + 1, count))
    b.output("value", count)
    b.output("wrap", count.eq((1 << width) - 1))
    return b.build()


def test_counter_counts():
    sim = Simulator(build_counter())
    outs = [sim.step({"en": 1}) for _ in range(5)]
    assert [o["value"] for o in outs] == [0, 1, 2, 3, 4]


def test_counter_holds_without_enable():
    sim = Simulator(build_counter())
    sim.step({"en": 1})
    sim.step({"en": 0})
    assert sim.step({"en": 0})["value"] == 1


def test_counter_wraps():
    sim = Simulator(build_counter(2))
    values = [sim.step({"en": 1})["value"] for _ in range(6)]
    assert values == [0, 1, 2, 3, 0, 1]


def test_reset_restores_initial_state():
    sim = Simulator(build_counter())
    for _ in range(3):
        sim.step({"en": 1})
    sim.reset()
    assert sim.step({"en": 0})["value"] == 0
    assert sim.cycle == 1


def test_input_range_checked():
    sim = Simulator(build_counter())
    with pytest.raises(ValueError):
        sim.step({"en": 2})


def test_rom_read():
    b = ModuleBuilder("romtest")
    addr = b.input("addr", 2)
    rom = b.rom("t", 8, 4, [10, 20, 30, 40])
    b.output("data", rom.read(addr))
    sim = Simulator(b.build())
    for a, want in enumerate([10, 20, 30, 40]):
        assert sim.step({"addr": a})["data"] == want


def test_config_mem_write_then_read():
    b = ModuleBuilder("cfg")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 8, 4)
    b.output("data", mem.read(addr))
    sim = Simulator(b.build())
    # Memory powers up to zero.
    assert sim.step({"addr": 1})["data"] == 0
    # Write 0x5A to row 1 (takes effect next cycle).
    sim.step({"tbl_we": 1, "tbl_waddr": 1, "tbl_wdata": 0x5A, "addr": 1})
    assert sim.step({"addr": 1})["data"] == 0x5A
    assert sim.step({"addr": 0})["data"] == 0


def test_load_memory_backdoor():
    b = ModuleBuilder("cfg")
    addr = b.input("addr", 2)
    mem = b.config_mem("tbl", 4, 4)
    b.output("data", mem.read(addr))
    sim = Simulator(b.build())
    sim.load_memory("tbl", [1, 2, 3])
    assert sim.step({"addr": 2})["data"] == 3
    assert sim.step({"addr": 3})["data"] == 0
    with pytest.raises(ValueError):
        sim.load_memory("tbl", [0] * 5)


def test_load_memory_rejects_rom():
    b = ModuleBuilder("cfg")
    addr = b.input("addr", 1)
    rom = b.rom("t", 4, 2, [1, 2])
    b.output("data", rom.read(addr))
    sim = Simulator(b.build())
    with pytest.raises(ValueError):
        sim.load_memory("t", [0])


def test_case_evaluation():
    b = ModuleBuilder("casey")
    sel = b.input("sel", 2)
    out = b.case(sel, {0: Const(5, 4), 2: Const(9, 4)}, Const(1, 4))
    b.output("o", out)
    sim = Simulator(b.build())
    assert sim.step({"sel": 0})["o"] == 5
    assert sim.step({"sel": 1})["o"] == 1
    assert sim.step({"sel": 2})["o"] == 9
    assert sim.step({"sel": 3})["o"] == 1


def test_arith_and_compare_ops():
    b = ModuleBuilder("alu")
    a = b.input("a", 4)
    c = b.input("b", 4)
    b.output("sum", a + c)
    b.output("diff", a - c)
    b.output("lt", a.lt(c))
    b.output("parity", a.parity())
    b.output("joined", cat(a, c))
    sim = Simulator(b.build())
    out = sim.step({"a": 9, "b": 12})
    assert out["sum"] == (9 + 12) & 0xF
    assert out["diff"] == (9 - 12) & 0xF
    assert out["lt"] == 1
    assert out["parity"] == 0
    assert out["joined"] == 9 | (12 << 4)


def test_peek_poke_reg():
    sim = Simulator(build_counter())
    sim.poke_reg("count", 7)
    assert sim.peek_reg("count") == 7
    assert sim.step({"en": 0})["value"] == 7
    with pytest.raises(ValueError):
        sim.poke_reg("count", 16)
