"""Property-based tests for AIG construction and optimization passes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import balance, dc_rewrite, resub, rewrite
from repro.aig.graph import AIG, lit_compl
from repro.aig.rewrite import tt_sweep
from repro.aig.tt_util import expand_table, insert_var, project_table, remove_var
from repro.sat.equiv import check_combinational_equivalence
from repro.tables.bits import all_ones, tt_support, var_mask


@st.composite
def random_aig_spec(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    num_inputs = draw(st.integers(min_value=2, max_value=6))
    num_nodes = draw(st.integers(min_value=1, max_value=50))
    return seed, num_inputs, num_nodes


def build_random_aig(seed, num_inputs, num_nodes):
    rng = random.Random(seed)
    aig = AIG()
    pool = [aig.add_pi(f"x[{i}]") for i in range(num_inputs)]
    for _ in range(num_nodes):
        a = rng.choice(pool) ^ rng.randint(0, 1)
        b = rng.choice(pool) ^ rng.randint(0, 1)
        pool.append(aig.and_(a, b))
    for index in range(3):
        aig.add_po(f"f{index}", rng.choice(pool) ^ rng.randint(0, 1))
    return aig


@given(random_aig_spec())
@settings(max_examples=40, deadline=None)
def test_passes_preserve_equivalence(spec):
    aig = build_random_aig(*spec)
    for pass_fn in (balance, tt_sweep, rewrite, resub, dc_rewrite):
        optimized = pass_fn(aig)
        assert check_combinational_equivalence(aig, optimized)


@given(random_aig_spec())
@settings(max_examples=40, deadline=None)
def test_passes_never_grow_the_graph_much(spec):
    aig = build_random_aig(*spec)
    cleaned, _ = aig.cleanup()
    for pass_fn in (balance, tt_sweep):
        optimized = pass_fn(cleaned)
        assert optimized.num_ands <= cleaned.num_ands


@given(random_aig_spec())
@settings(max_examples=30, deadline=None)
def test_cleanup_idempotent(spec):
    aig = build_random_aig(*spec)
    once, _ = aig.cleanup()
    twice, _ = once.cleanup()
    assert once.num_ands == twice.num_ands


@given(
    st.integers(min_value=1, max_value=5).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
            st.integers(min_value=0, max_value=n),
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_insert_then_remove_var_roundtrips(args):
    num_vars, table, position = args
    grown = insert_var(table, position, num_vars)
    # The inserted variable is a non-support variable by construction.
    assert not tt_support(grown, num_vars + 1).count(position)
    shrunk = remove_var(grown, position, num_vars + 1)
    assert shrunk == table


@given(
    st.integers(min_value=2, max_value=5).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << (n - 1))) - 1),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_expand_table_semantics(args):
    """Expanding onto a superset of leaves preserves the function."""
    num_vars, table = args
    from_leaves = tuple(range(0, 2 * (num_vars - 1), 2))  # 0,2,4,...
    to_leaves = tuple(range(2 * num_vars - 1))  # 0..2n-2
    expanded = expand_table(table, from_leaves, to_leaves)
    for minterm in range(1 << len(to_leaves)):
        source = 0
        for index, leaf in enumerate(from_leaves):
            position = to_leaves.index(leaf)
            if minterm >> position & 1:
                source |= 1 << index
        assert (expanded >> minterm) & 1 == (table >> source) & 1


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_var_mask_projection(num_vars):
    for var in range(num_vars):
        mask = var_mask(var, num_vars)
        assert tt_support(mask, num_vars) == (var,)
        assert mask | ~mask & all_ones(num_vars) == all_ones(num_vars)


@given(random_aig_spec())
@settings(max_examples=25, deadline=None)
def test_project_table_on_swept_nodes(spec):
    """tt_sweep's normalised tables only mention true support."""
    aig = build_random_aig(*spec)
    swept = tt_sweep(aig)
    assert check_combinational_equivalence(aig, swept)
    # Sweeping twice changes nothing further.
    again = tt_sweep(swept)
    assert again.num_ands == swept.num_ands
