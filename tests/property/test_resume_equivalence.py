"""Property: a resumed compile equals a from-scratch one everywhere.

For every pipeline, every split point, and every kernel backend, a
compile that resumes from a cached prefix (stage snapshot or a
shorter pipeline's completed entry) must be byte-identical to the
same pipeline run from scratch: canonical hashes, areas, and pass
records -- including the progress/rollback flags -- with only wall
times free to differ.  This is the correctness bar the whole
incremental-compilation layer rests on.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.kernel import available_backends
from repro.flow import CompileCache, PassManager, SnapshotPolicy
from repro.track.bench import build_table_aig, frontend_inputs

#: (name, spec, input kwargs) -- an AIG-stage pipeline covering all
#: four optimization passes, plus frontend lowerings entering at the
#: ctrl stage, so resume is exercised across every stage boundary.
PIPELINES = [
    (
        "aig",
        "balance,rewrite,resub,dc_rewrite",
        lambda: {"aig": build_table_aig(6, 8, seed=3)},
    ),
    (
        "fsm",
        "fsm_encode{realize=case},fsm_infer,honour_annotations,"
        "encode,elaborate,optimize",
        lambda: {"ctrl": frontend_inputs(0)[0]},
    ),
    (
        "table",
        "table_rom,elaborate,optimize,map,size",
        lambda: {"ctrl": frontend_inputs(0)[1]},
    ),
]

_BY_NAME = {name: (spec, inputs) for name, spec, inputs in PIPELINES}


def record_signature(ctx):
    return [
        (r.name, r.stage, r.before, r.after, r.messages, r.skipped,
         r.rejected, r.failed)
        for r in ctx.records
    ]


def final_identity(ctx):
    return (
        None if ctx.aig is None else ctx.aig.canonical_hash(),
        None if ctx.area is None else ctx.area.total,
        None if ctx.timing is None else ctx.timing.critical_delay,
    )


@pytest.mark.parametrize("backend", available_backends())
@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(sorted(_BY_NAME)),
    split=st.integers(min_value=1, max_value=10),
)
def test_resume_equals_from_scratch(tmp_path_factory, backend, name, split):
    spec, make_inputs = _BY_NAME[name]
    pipeline = PassManager.parse(spec)
    split = 1 + split % (len(pipeline.passes) - 1)  # a *proper* prefix
    prefix = PassManager.parse(pipeline.prefix_specs()[split - 1])
    inputs = make_inputs()

    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = backend
    try:
        scratch = PassManager.parse(spec).compile(**make_inputs())

        tmp = tmp_path_factory.mktemp(f"resume-{name}-{split}-{backend}")
        cache = CompileCache(tmp)
        # Seed the cache by genuinely running the prefix pipeline with
        # snapshots on -- it leaves both its stage snapshots and its
        # completed entry behind; whichever the probe finds first must
        # produce the same result.
        prefix.compile(
            **inputs,
            cache=cache,
            snapshots=SnapshotPolicy(min_pass_seconds=0.0),
        )
        resumed = PassManager.parse(spec).compile(
            **make_inputs(), cache=cache
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous

    assert resumed.meta.get("passes_skipped", 0) >= split
    assert record_signature(resumed) == record_signature(scratch)
    assert final_identity(resumed) == final_identity(scratch)
