"""Property-based tests for the two-level logic substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables.bits import all_ones, cofactor0, cofactor1
from repro.tables.cube import cover_truth_table
from repro.tables.isop import isop
from repro.tables.qm import minimize_exact, prime_implicants
from repro.tables.sop import SopCover


@st.composite
def on_dc_pair(draw, max_vars=7):
    num_vars = draw(st.integers(min_value=1, max_value=max_vars))
    bits = 1 << num_vars
    on = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    dc_raw = draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    return on, dc_raw & ~on, num_vars


@given(on_dc_pair())
@settings(max_examples=150, deadline=None)
def test_isop_always_valid(pair):
    on, dc, num_vars = pair
    cubes = isop(on, dc, num_vars)
    table = cover_truth_table(cubes, num_vars)
    assert on & ~table == 0
    assert table & ~(on | dc) == 0


@given(on_dc_pair(max_vars=4))
@settings(max_examples=80, deadline=None)
def test_qm_never_beaten_by_isop(pair):
    """QM is exact, so its cube count lower-bounds ISOP's."""
    on, dc, num_vars = pair
    exact = minimize_exact(on, dc, num_vars)
    heuristic = isop(on, dc, num_vars)
    assert len(exact) <= len(heuristic)


@given(on_dc_pair(max_vars=5))
@settings(max_examples=80, deadline=None)
def test_primes_cover_care_set(pair):
    on, dc, num_vars = pair
    primes = prime_implicants(on, dc, num_vars)
    table = cover_truth_table(primes, num_vars)
    assert table == 0 or (on | dc) & ~table == 0 or table & ~(on | dc) == 0
    # Primes never cover OFF minterms.
    assert table & ~(on | dc) == 0


@given(on_dc_pair())
@settings(max_examples=100, deadline=None)
def test_sopcover_verify_agrees(pair):
    on, dc, num_vars = pair
    cover = SopCover.from_truth_table(on, dc, num_vars)
    assert cover.verify(on, dc)
    # Evaluate pointwise on a sample of minterms.
    for minterm in range(0, 1 << num_vars, max(1, (1 << num_vars) // 16)):
        value = cover.evaluate(minterm)
        if on >> minterm & 1:
            assert value
        elif not (dc >> minterm & 1):
            assert not value


@given(
    st.integers(min_value=1, max_value=7).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
    )
)
@settings(max_examples=120, deadline=None)
def test_shannon_expansion(args):
    """f = (x & f1) | (~x & f0) for every variable."""
    num_vars, table, var = args
    from repro.tables.bits import var_mask

    pattern = var_mask(var, num_vars)
    f0 = cofactor0(table, var, num_vars)
    f1 = cofactor1(table, var, num_vars)
    rebuilt = (pattern & f1) | (~pattern & f0) & all_ones(num_vars)
    assert rebuilt & all_ones(num_vars) == table
