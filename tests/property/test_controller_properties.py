"""Property-based tests for the controller IRs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controllers.assembler import Program
from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import fsm_to_case_rtl, fsm_to_table_rtl
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.sim.rtlsim import Simulator


@st.composite
def fsm_params(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=6))
    s = draw(st.integers(min_value=2, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=9999))
    return m, n, s, seed


@given(fsm_params())
@settings(max_examples=25, deadline=None)
def test_fsm_styles_agree_with_spec(params):
    m, n, s, seed = params
    spec = random_fsm(m, n, s, random.Random(seed))
    case_sim = Simulator(fsm_to_case_rtl(spec))
    table_sim = Simulator(fsm_to_table_rtl(spec))
    state = spec.reset_state
    rng = random.Random(seed + 1)
    for _ in range(24):
        word = rng.getrandbits(m)
        expected_state, expected_out = spec.step(state, word)
        assert case_sim.step({"in": word})["out"] == expected_out
        assert table_sim.step({"in": word})["out"] == expected_out
        state = expected_state


@given(fsm_params())
@settings(max_examples=25, deadline=None)
def test_random_fsm_reaches_every_state(params):
    m, n, s, seed = params
    spec = random_fsm(m, n, s, random.Random(seed))
    assert spec.reachable_states() == tuple(range(s))
    # Restricting to zero input words reaches at least the reset state.
    assert spec.reachable_states(allowed_inputs=[]) == (spec.reset_state,)


@st.composite
def format_spec(draw):
    num_fields = draw(st.integers(min_value=1, max_value=3))
    fields = []
    for index in range(num_fields):
        symbols = draw(
            st.lists(
                st.sampled_from(["a", "b", "c", "d", "e", "f"]),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        fields.append((f"f{index}", symbols))
    horizontal = draw(st.booleans())
    return fields, horizontal


@given(format_spec(), st.data())
@settings(max_examples=50, deadline=None)
def test_format_pack_unpack_roundtrip(spec, data):
    fields, horizontal = spec
    fmt = (
        MicrocodeFormat.horizontal(*fields)
        if horizontal
        else MicrocodeFormat.vertical(*fields)
    )
    values = {}
    for name, symbols in fields:
        choice = data.draw(st.sampled_from(symbols + [None]))
        values[name] = choice
    word = fmt.pack(**values)
    unpacked = fmt.unpack(word)
    for name, symbol in values.items():
        expected = fmt.field(name).encode(symbol)
        assert unpacked[name] == expected
    assert 0 <= word < (1 << fmt.width)


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=99),
)
@settings(max_examples=40, deadline=None)
def test_straightline_program_reachability(length, seed):
    """A straight-line program that loops back reaches exactly its code."""
    fmt = MicrocodeFormat.horizontal(("cmd", ["go"]))
    prog = Program(fmt)
    prog.label("top")
    rng = random.Random(seed)
    for _ in range(length):
        if rng.random() < 0.5:
            prog.inst(cmd="go")
        else:
            prog.inst()
    prog.inst(seq=SeqOp.JUMP, target="top")
    image = prog.assemble()
    assert image.reachable_addresses() == tuple(range(length + 1))
    assert image.length == length + 1
