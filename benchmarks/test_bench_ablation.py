"""Ablation benchmarks for the design choices DESIGN.md calls out.

Two choices the paper discusses but does not plot get quantified here:

* **horizontal vs vertical microcode** (Section II-B): horizontal
  formats store decoded fields (wider words, bigger flexible storage,
  no downstream decoders); vertical formats pack tightly.  After
  partial evaluation the storage difference disappears, which is the
  paper's point about pre-silicon configurability.
* **FSM encoding styles** (`set_fsm_encoding`): binary / one-hot /
  gray re-encoding of an annotated table FSM all land near the direct
  implementation, differing in flop count vs next-state logic.
"""

import random

from repro.controllers import (
    DispatchTable,
    MicrocodeFormat,
    Program,
    SeqOp,
    SequencerSpec,
    generate_sequencer,
)
from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import fsm_to_table_rtl
from repro.flow import (
    CompileJob,
    PassManager,
    compile_many,
    optimize_loop,
    state_folding,
)
from repro.flow.passes import (
    ElaboratePass,
    EncodePass,
    FsmInferPass,
    HonourAnnotationsPass,
    SizePass,
    TechMapPass,
)
from repro.pe import prepare_auto
from repro.synth.dc_options import StateAnnotation


def standard_pipeline(encoding="binary", clock_period_ns=5.0):
    """The default flow, composed explicitly from flow-API stages."""
    passes = [FsmInferPass(), HonourAnnotationsPass()]
    if encoding != "same":
        passes.append(EncodePass(encoding))
    passes += [
        ElaboratePass(),
        optimize_loop(),
        state_folding(),
        TechMapPass(),
        SizePass(clock_period_ns),
    ]
    return PassManager(passes)

_FIELDS = (
    ("cmd", ["read", "write", "sync", "flush"]),
    ("unit", ["p0", "p1", "p2"]),
)


def _write_program(fmt: MicrocodeFormat):
    table = DispatchTable("ops", opcode_bits=2, default="idle")
    table.set(1, "move")
    table.set(2, "drain")
    prog = Program(fmt, conditions=["req", "more"])
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    prog.label("move")
    prog.inst(cmd="read", unit="p0")
    prog.inst(cmd="write", unit="p1")
    prog.inst(cmd="sync", unit="p2", seq=SeqOp.JUMP, target="idle")
    prog.label("drain")
    prog.inst(cmd="flush", unit="p0")
    prog.inst(cmd="flush", unit="p1", seq=SeqOp.JUMP, target="idle")
    return prog.assemble(addr_bits=3, dispatch=table)


def _sequencer_areas(fmt: MicrocodeFormat, pipeline: PassManager):
    image = _write_program(fmt)
    flex_spec = SequencerSpec(
        "ablate", fmt, addr_bits=3, num_conditions=2, opcode_bits=2,
        flexible=True,
    )
    flexible = generate_sequencer(flex_spec).module
    bound, run_options = prepare_auto(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
    )
    compiled = compile_many(
        [
            CompileJob("full", pipeline, module=flexible),
            CompileJob(
                "auto", pipeline, module=bound,
                annotations=tuple(run_options.state_annotations),
            ),
        ]
    )
    return compiled["full"].area, compiled["auto"].area


def test_bench_ablation_microcode_packing(once):
    """Horizontal pays storage in the flexible design, not after PE."""
    pipeline = standard_pipeline()

    def run():
        horizontal = MicrocodeFormat.horizontal(*_FIELDS)
        vertical = MicrocodeFormat.vertical(*_FIELDS)
        return (
            horizontal.width,
            vertical.width,
            _sequencer_areas(horizontal, pipeline),
            _sequencer_areas(vertical, pipeline),
        )

    h_width, v_width, (h_full, h_auto), (v_full, v_auto) = once(run)
    assert h_width > v_width  # one-hot fields really are wider
    # Flexible storage scales with word width.
    assert h_full.sequential > v_full.sequential
    # After partial evaluation the storage difference is gone: both
    # keep only the uPC, so sequential areas are identical and the
    # remaining (combinational) gap is small.
    assert h_auto.sequential == v_auto.sequential
    assert h_auto.total <= v_full.total
    assert abs(h_auto.combinational - v_auto.combinational) <= max(
        h_auto.combinational, v_auto.combinational
    )


def test_bench_ablation_fsm_encodings(once):
    """binary/gray/onehot re-encodings all stay near the same area."""
    spec = random_fsm(2, 4, 6, random.Random(13))
    module = fsm_to_table_rtl(spec)

    def run():
        styles = ("binary", "gray", "onehot")
        compiled = compile_many(
            [
                CompileJob(
                    style, standard_pipeline(encoding=style),
                    module=module,
                    annotations=(StateAnnotation("state", tuple(range(6))),),
                )
                for style in styles
            ]
        )
        return {
            style: (
                compiled[style].area.total,
                compiled[style].netlist.area_report().num_flops,
            )
            for style in styles
        }

    areas = once(run)
    assert areas["onehot"][1] == 6  # one flop per state
    assert areas["binary"][1] == 3
    assert areas["gray"][1] == 3
    totals = [total for total, _flops in areas.values()]
    assert max(totals) <= 2.5 * min(totals)
