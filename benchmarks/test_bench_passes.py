"""Microbenchmarks for the synthesis substrate.

These track the cost of the passes the figure-level benchmarks are
built from, so a performance regression is attributable.  The
workload builders and registry-covering pipelines are shared with
``python -m repro.track record bench`` (:mod:`repro.track.bench`);
set ``REPRO_RUN_STORE=<dir>`` to additionally persist this run's
per-pass timings into that run store for cross-commit diffing.
"""

import os
import random

import pytest

from repro.aig import balance, dc_rewrite, resub, rewrite
from repro.aig.kernel import available_backends, resolve_backend
from repro.aig.rewrite import tt_sweep
from repro.flow import PASS_REGISTRY
from repro.sat.equiv import check_combinational_equivalence
from repro.tables.isop import isop
from repro.track.bench import (
    AIG_LEAF_PASSES,
    annotated_fsm_module,
    bench_pipelines,
    build_table_aig,
    build_wide_window_aig,
    frontend_inputs,
)
from repro.tech.mapper import map_aig


@pytest.fixture(scope="module")
def table_aig():
    return build_table_aig()


@pytest.fixture(scope="module")
def wide_aig():
    return build_wide_window_aig()


def test_bench_isop_random_functions(benchmark):
    rng = random.Random(7)
    tables = [rng.getrandbits(1 << 8) for _ in range(20)]

    def run():
        return sum(len(isop(t, 0, 8)) for t in tables)

    cubes = benchmark(run)
    assert cubes > 0


def test_bench_tt_sweep(benchmark, table_aig):
    swept = benchmark(tt_sweep, table_aig)
    assert swept.num_ands <= table_aig.num_ands


def test_bench_balance(benchmark, table_aig):
    balanced = benchmark(balance, table_aig)
    assert balanced.depth() <= table_aig.depth()


def test_bench_rewrite(benchmark, table_aig):
    rewritten = benchmark(rewrite, table_aig)
    assert rewritten.num_ands <= table_aig.num_ands + 2


def test_bench_resub(benchmark, table_aig):
    substituted = benchmark(resub, table_aig)
    assert substituted.num_ands <= table_aig.num_ands


def test_bench_dc_rewrite(benchmark, table_aig):
    optimized = benchmark(dc_rewrite, table_aig)
    assert optimized.num_ands <= table_aig.num_ands


def test_bench_mapping(benchmark, table_aig):
    netlist = benchmark(map_aig, table_aig)
    assert netlist.area_report().num_cells > 0


def test_bench_sat_equivalence(benchmark, table_aig):
    optimized = tt_sweep(table_aig)

    def run():
        return check_combinational_equivalence(table_aig, optimized)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result


def _maybe_store_run(contexts, commit=None, kernel=None) -> None:
    """Persist this run's per-pass totals when ``REPRO_RUN_STORE`` is
    set (CI exports it so every commit's bench lands in the store)."""
    store_dir = os.environ.get("REPRO_RUN_STORE")
    if not store_dir:
        return
    from repro.track.bench import store_bench_record

    store_bench_record(
        contexts, store_dir,
        commit=commit or os.environ.get("REPRO_RUN_COMMIT", "HEAD"),
        kernel=kernel,
    )


def test_bench_each_registered_pass_individually(benchmark, table_aig):
    """Per-pass wall time via PassRecord instrumentation.

    The shared bench pipelines together execute every pass in the
    registry -- the AIG leaf passes in isolation (cleanly attributable
    timings), the "optimize" composite on its own (so its body's
    records don't fold into the leaf timings), an annotated FSM
    through the full RTL-to-netlist flow for the rtl/netlist-stage
    passes, and each frontend lowering on its own controller IR --
    and every one leaves a timed PassRecord, so a regression in any
    registered pass is attributable from this one case.
    """
    from repro.synth.dc_options import StateAnnotation

    pipelines = bench_pipelines()
    module = annotated_fsm_module()
    annotations = [StateAnnotation("state", (0, 1, 2))]
    fsm, table, program, flexible, bindings = frontend_inputs()

    wide_aig = build_wide_window_aig()

    def run():
        return (
            pipelines["leaf"].compile(aig=table_aig),
            pipelines["kernel"].compile(aig=wide_aig),
            pipelines["optimize"].compile(aig=table_aig),
            pipelines["full"].compile(module, annotations=annotations),
            pipelines["fsm_lower"].compile(ctrl=fsm),
            pipelines["table_lower"].compile(ctrl=table),
            pipelines["sop_lower"].compile(ctrl=table),
            pipelines["useq_lower"].compile(ctrl=program),
            pipelines["bind"].compile(flexible, bindings=bindings),
        )

    contexts = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    leaf_ctx, opt_ctx = contexts[0], contexts[2]
    # Isolated, attributable timings for the leaf passes.
    leaf_timings = {}
    for record in leaf_ctx.records:
        if record.name in PASS_REGISTRY:
            leaf_timings.setdefault(record.name, 0.0)
            leaf_timings[record.name] += record.wall_time_s
    assert sorted(leaf_timings) == sorted(AIG_LEAF_PASSES)
    [opt_record] = [r for r in opt_ctx.records if r.name == "optimize"]
    assert opt_record.wall_time_s > 0.0

    # Full registry coverage: every registered pass left a record.
    recorded = {
        record.name
        for ctx in contexts
        for record in ctx.records
        if not record.skipped
    }
    missing = set(PASS_REGISTRY) - recorded
    assert not missing, f"registered passes with no PassRecord: {missing}"
    # The instrumentation also carries structural before/after stats,
    # AIG ones on the leaf passes and frontend ones on the lowerings.
    assert all(
        r.before is not None and r.after is not None
        for r in leaf_ctx.records
        if r.name in AIG_LEAF_PASSES
    )
    ctrl_records = [
        record
        for ctx in contexts
        for record in ctx.records
        if record.stage == "ctrl"
    ]
    assert ctrl_records  # the frontend pipelines really ran
    assert all(record.ctrl_before is not None for record in ctrl_records)
    _maybe_store_run(contexts)


@pytest.mark.parametrize("kernel", available_backends())
def test_bench_leaf_passes_per_kernel(benchmark, table_aig, wide_aig, kernel):
    """The AIG leaf + wide-window pipelines, once per kernel backend.

    With ``REPRO_RUN_STORE`` set, each backend's timings persist as a
    separate ``kernel-<name>`` series, so
    ``python -m repro.track diff kernel-pure kernel-numpy
    --same-structure`` gates byte-identity (zero structural deltas)
    while exposing the wall-time gap.
    """
    pipelines = bench_pipelines(kernel)

    def run():
        return (
            pipelines["leaf"].compile(aig=table_aig),
            pipelines["kernel"].compile(aig=wide_aig),
        )

    contexts = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    leaf_ctx, kernel_ctx = contexts
    timed = {r.name for ctx in contexts for r in ctx.records if not r.skipped}
    assert set(AIG_LEAF_PASSES) <= timed
    # Backend identity is result-invisible: both series report the
    # same structural work, byte for byte.
    assert all(
        r.before is not None and r.after is not None
        for r in kernel_ctx.records
    )
    _maybe_store_run(contexts, commit=f"kernel-{kernel}", kernel=kernel)


def test_bench_kernel_speedup(benchmark, wide_aig):
    """The numpy backend beats pure on the widest-window workload.

    The margin asserted (1.5x on resubstitution over the wide-window
    graph) is far below the measured gap (>3x), so scheduler noise
    does not flake this; the precise speedup is tracked through the
    run store, not this gate.
    """
    import time

    if "numpy" not in available_backends():
        pytest.skip("NumPy is not installed: no backend to compare")
    pure = resolve_backend("pure")
    numpy = resolve_backend("numpy")

    def run_with(backend):
        return resub(
            wide_aig, support_limit=16, max_divisors=24, kernel=backend
        )

    run_with(numpy)  # warm the numpy import and index caches
    start = time.perf_counter()
    pure_result = run_with(pure)
    pure_s = time.perf_counter() - start
    start = time.perf_counter()
    numpy_result = benchmark.pedantic(
        run_with, args=(numpy,), rounds=1, iterations=1, warmup_rounds=0
    )
    numpy_s = time.perf_counter() - start
    assert pure_result.canonical_hash() == numpy_result.canonical_hash()
    assert numpy_s * 1.5 < pure_s, (
        f"numpy backend not faster: {numpy_s:.3f}s vs pure {pure_s:.3f}s"
    )
