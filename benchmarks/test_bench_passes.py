"""Microbenchmarks for the synthesis substrate.

These track the cost of the passes the figure-level benchmarks are
built from, so a performance regression is attributable.
"""

import random

import pytest

from repro.aig import balance, rewrite
from repro.aig.graph import AIG
from repro.aig.rewrite import tt_sweep
from repro.aig import ops
from repro.sat.equiv import check_combinational_equivalence
from repro.tables.isop import isop
from repro.tables.truthtable import TruthTable
from repro.tech.mapper import map_aig


def build_table_aig(num_inputs=8, width=16, seed=0):
    rng = random.Random(seed)
    table = TruthTable.random(num_inputs, width, rng)
    aig = AIG()
    addr = [aig.add_pi(f"a[{i}]") for i in range(num_inputs)]
    rows = [ops.const_word(word, width) for word in table.rows()]
    data = ops.table_read(aig, addr, rows)
    for bit, lit in enumerate(data):
        aig.add_po(f"d[{bit}]", lit)
    cleaned, _ = aig.cleanup()
    return cleaned


@pytest.fixture(scope="module")
def table_aig():
    return build_table_aig()


def test_bench_isop_random_functions(benchmark):
    rng = random.Random(7)
    tables = [rng.getrandbits(1 << 8) for _ in range(20)]

    def run():
        return sum(len(isop(t, 0, 8)) for t in tables)

    cubes = benchmark(run)
    assert cubes > 0


def test_bench_tt_sweep(benchmark, table_aig):
    swept = benchmark(tt_sweep, table_aig)
    assert swept.num_ands <= table_aig.num_ands


def test_bench_balance(benchmark, table_aig):
    balanced = benchmark(balance, table_aig)
    assert balanced.depth() <= table_aig.depth()


def test_bench_rewrite(benchmark, table_aig):
    rewritten = benchmark(rewrite, table_aig)
    assert rewritten.num_ands <= table_aig.num_ands + 2


def test_bench_mapping(benchmark, table_aig):
    netlist = benchmark(map_aig, table_aig)
    assert netlist.area_report().num_cells > 0


def test_bench_sat_equivalence(benchmark, table_aig):
    optimized = tt_sweep(table_aig)

    def run():
        return check_combinational_equivalence(table_aig, optimized)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result
