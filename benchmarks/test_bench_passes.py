"""Microbenchmarks for the synthesis substrate.

These track the cost of the passes the figure-level benchmarks are
built from, so a performance regression is attributable.
"""

import random

import pytest

from repro.aig import balance, rewrite
from repro.aig.graph import AIG
from repro.aig.rewrite import tt_sweep
from repro.aig import ops
from repro.flow import PASS_REGISTRY, PassManager
from repro.sat.equiv import check_combinational_equivalence
from repro.tables.isop import isop
from repro.tables.truthtable import TruthTable
from repro.tech.mapper import map_aig


def build_table_aig(num_inputs=8, width=16, seed=0):
    rng = random.Random(seed)
    table = TruthTable.random(num_inputs, width, rng)
    aig = AIG()
    addr = [aig.add_pi(f"a[{i}]") for i in range(num_inputs)]
    rows = [ops.const_word(word, width) for word in table.rows()]
    data = ops.table_read(aig, addr, rows)
    for bit, lit in enumerate(data):
        aig.add_po(f"d[{bit}]", lit)
    cleaned, _ = aig.cleanup()
    return cleaned


@pytest.fixture(scope="module")
def table_aig():
    return build_table_aig()


def test_bench_isop_random_functions(benchmark):
    rng = random.Random(7)
    tables = [rng.getrandbits(1 << 8) for _ in range(20)]

    def run():
        return sum(len(isop(t, 0, 8)) for t in tables)

    cubes = benchmark(run)
    assert cubes > 0


def test_bench_tt_sweep(benchmark, table_aig):
    swept = benchmark(tt_sweep, table_aig)
    assert swept.num_ands <= table_aig.num_ands


def test_bench_balance(benchmark, table_aig):
    balanced = benchmark(balance, table_aig)
    assert balanced.depth() <= table_aig.depth()


def test_bench_rewrite(benchmark, table_aig):
    rewritten = benchmark(rewrite, table_aig)
    assert rewritten.num_ands <= table_aig.num_ands + 2


def test_bench_mapping(benchmark, table_aig):
    netlist = benchmark(map_aig, table_aig)
    assert netlist.area_report().num_cells > 0


def test_bench_sat_equivalence(benchmark, table_aig):
    optimized = tt_sweep(table_aig)

    def run():
        return check_combinational_equivalence(table_aig, optimized)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result


#: Registered AIG-stage leaf passes that run out of the box on a bare
#: AIG context; the composite "optimize" is timed in its own pipeline
#: so its body's records don't fold into the leaf timings.
_AIG_LEAF_PASSES = ("seq_sweep", "tt_sweep", "balance", "rewrite", "retime")


def _annotated_fsm_module():
    """A table FSM whose annotation exercises encode and stateprop."""
    from repro.rtl.builder import ModuleBuilder, cat

    b = ModuleBuilder("bench_fsm")
    go = b.input("go")
    state = b.reg("state", 2)
    table = b.rom("nxt", 2, 8, [0, 2, 0, 0, 1, 2, 0, 0])
    b.drive(state, table.read(cat(state, go)))
    b.output("busy", state.ne(0))
    return b.build()


def test_bench_each_registered_pass_individually(benchmark, table_aig):
    """Per-pass wall time via PassRecord instrumentation.

    Three pipelines together execute every pass in the registry --
    the AIG leaf passes in isolation (cleanly attributable timings),
    the "optimize" composite on its own (so its body's records don't
    fold into the leaf timings), and an annotated FSM through the full
    RTL-to-netlist flow for the rtl/netlist-stage passes -- and every
    one leaves a timed PassRecord, so a regression in any registered
    pass is attributable from this one case.
    """
    from repro.synth.dc_options import StateAnnotation

    leaf_pipeline = PassManager.parse(",".join(_AIG_LEAF_PASSES))
    optimize_pipeline = PassManager.parse("optimize")
    # retime_stage/state_folding cover their drivers too: the body's
    # retime and stateprop records land in the same context.
    full_pipeline = PassManager.parse(
        "fsm_infer,honour_annotations,encode,elaborate,optimize,"
        "retime_stage,state_folding,stateprop,map,size"
    )
    module = _annotated_fsm_module()
    annotations = [StateAnnotation("state", (0, 1, 2))]

    def run():
        return (
            leaf_pipeline.compile(aig=table_aig),
            optimize_pipeline.compile(aig=table_aig),
            full_pipeline.compile(module, annotations=annotations),
        )

    leaf_ctx, opt_ctx, full_ctx = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    # Isolated, attributable timings for the leaf passes.
    leaf_timings = {}
    for record in leaf_ctx.records:
        if record.name in PASS_REGISTRY:
            leaf_timings.setdefault(record.name, 0.0)
            leaf_timings[record.name] += record.wall_time_s
    assert sorted(leaf_timings) == sorted(_AIG_LEAF_PASSES)
    [opt_record] = [r for r in opt_ctx.records if r.name == "optimize"]
    assert opt_record.wall_time_s > 0.0

    # Full registry coverage: every registered pass left a record.
    recorded = {
        record.name
        for ctx in (leaf_ctx, opt_ctx, full_ctx)
        for record in ctx.records
        if not record.skipped
    }
    missing = set(PASS_REGISTRY) - recorded
    assert not missing, f"registered passes with no PassRecord: {missing}"
    # The instrumentation also carries structural before/after stats.
    assert all(
        r.before is not None and r.after is not None
        for r in leaf_ctx.records
        if r.name in _AIG_LEAF_PASSES
    )
