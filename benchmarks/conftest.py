"""Benchmark configuration.

The experiment drivers are deterministic but expensive, so every
benchmark runs one round with no warmup; the value of the suite is the
tracked wall-time per figure plus the embedded shape assertions, which
make ``pytest benchmarks/ --benchmark-only`` a one-command
reproduction check.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run
