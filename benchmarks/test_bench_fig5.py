"""Benchmark: regenerate Fig. 5 (table-based vs SOP combinational).

Runs the reduced sweep and asserts the paper's shape: partially
evaluated tables synthesize to ~the same area as hand-written
sum-of-products across the grid.
"""

import pytest

from repro.expts.fig5_tables import run_fig5


def test_bench_fig5_small(once):
    result = once(run_fig5, scale="small")
    stats = result.ratio_stats("table-based")
    assert stats.count >= 9
    assert 0.7 <= stats.geomean <= 1.3
    assert stats.maximum <= 2.0


@pytest.mark.slow
def test_bench_fig5_medium_slice(once):
    """A deeper slice (d up to 256) including the large-function regime
    where the paper saw table-based occasionally winning."""
    result = once(run_fig5, scale="medium")
    stats = result.ratio_stats("table-based")
    assert 0.7 <= stats.geomean <= 1.35
    deep_points = [p for p in result.points if p.meta["depth"] >= 64]
    assert deep_points, "medium scale must include deep tables"
    wins = sum(1 for p in deep_points if p.ratio <= 1.0)
    assert wins >= 1, "expected at least one table-based win at depth"
