"""Benchmark: regenerate Fig. 8 (state propagation across flops).

Asserts every qualitative claim of the paper's Section III-B on the
Fig. 7 design family.
"""

import pytest

from repro.expts.fig8_stateprop import run_fig8


def test_bench_fig8_small(once):
    result = once(run_fig8, scale="small")
    assert result.ratio_stats("comb/regular").maximum <= 1.01
    assert result.ratio_stats("plain/regular").minimum >= 1.1
    assert result.ratio_stats("plain/annotated").maximum <= 1.01
    assert result.ratio_stats("async/retimed").minimum >= 1.1


@pytest.mark.slow
def test_bench_fig8_medium_annotation_cap(once):
    """Medium scale reaches n=64: beyond the 32-bit state vector cap
    the annotation is ignored and the generic design stays big."""
    result = once(run_fig8, scale="medium")
    capped = [
        p.ratio
        for p in result.series("plain/annotated")
        if p.meta["n"] > 32
    ]
    helped = [
        p.ratio
        for p in result.series("plain/annotated")
        if p.meta["n"] <= 32
    ]
    assert capped and helped
    assert max(helped) <= 1.01
    assert min(capped) >= 1.1
