"""Benchmark: regenerate Fig. 6 (FSM styles).

Asserts the paper's shape: state annotation brings table-based FSMs
into line with the vendor-recommended case style, while the
unannotated versions show more variance.
"""

import pytest

from repro.expts.fig6_fsm import run_fig6


def test_bench_fig6_small(once):
    result = once(run_fig6, scale="small")
    regular = result.ratio_stats("regular")
    annotated = result.ratio_stats("state annotated")
    assert annotated.log_spread <= regular.log_spread + 0.05
    assert 0.6 <= annotated.geomean <= 1.25


@pytest.mark.slow
def test_bench_fig6_medium(once):
    """The full state grid (s in {2,3,8,16,17}) at m=2: the paper's
    non-power-of-two variance claim needs s in {3, 17} present."""
    result = once(run_fig6, scale="medium")
    regular_odd = [
        p.ratio for p in result.series("regular") if p.meta["s"] in (3, 17)
    ]
    regular_pow2 = [
        p.ratio for p in result.series("regular") if p.meta["s"] in (2, 8, 16)
    ]
    annotated = result.ratio_stats("state annotated")
    assert regular_odd and regular_pow2
    # Variance (worst-case blowup) concentrates at odd state counts.
    assert max(regular_odd) >= max(regular_pow2) - 0.05
    # Annotated stays within a tight band of the case-statement area.
    assert annotated.maximum <= 1.4
    assert annotated.geomean <= 1.15
