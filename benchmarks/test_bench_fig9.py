"""Benchmark: regenerate Fig. 9 (PCtrl Full/Auto/Manual).

Runs the scaled-down PCtrl so the benchmark stays in CI territory; the
full-size model is ``python -m repro.expts fig9 --scale medium``.
Asserts the paper's shape: Auto halves the flexible design's area in
both configurations, and Manual only matters for uncached mode.
"""

import pytest

from repro.expts.fig9_pctrl import run_fig9


@pytest.mark.slow
def test_bench_fig9_small(once):
    result = once(run_fig9, scale="small")
    text = result.to_markdown()
    assert "cached" in text and "uncached" in text

    rows = result.tables["Area (um^2) and switched-cap power proxy"]
    # Parse the flows back out of the rendered table.
    areas = {}
    for line in rows.splitlines()[2:]:
        config, flow, comb, seq, total, _power = line.split()
        areas[(config, flow)] = (float(comb), float(seq), float(total))

    for config in ("cached", "uncached"):
        full_comb, full_seq, full_total = areas[(config, "full")]
        auto_comb, auto_seq, auto_total = areas[(config, "auto")]
        # Partial evaluation removes a large part of both area classes.
        assert auto_comb < full_comb * 0.8
        assert auto_seq < full_seq * 0.8
        assert auto_total < full_total * 0.8

    manual_unc = areas[("uncached", "manual")][2]
    auto_unc = areas[("uncached", "auto")][2]
    manual_cached = areas[("cached", "manual")][2]
    auto_cached = areas[("cached", "auto")][2]
    unc_gain = 1 - manual_unc / auto_unc
    cached_gain = 1 - manual_cached / auto_cached
    # Manual pruning pays off in uncached mode, barely in cached mode.
    assert unc_gain > 0.05
    assert cached_gain < unc_gain
    assert cached_gain < 0.10
